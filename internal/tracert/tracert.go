// Package tracert is Gamma's probe-output portability layer (§3 of the
// paper). Field deployments cannot rely on one tool: Scapy's raw sockets
// are unavailable on Windows, so Gamma shells out to the OS tool — Linux
// `traceroute` or Windows `tracert` — whose outputs have different shapes.
// This package renders and parses all three formats and normalizes every
// one of them into an identical JSON structure with hop and RTT
// information, eliminating output variability downstream.
package tracert

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/gamma-suite/gamma/internal/netsim"
)

// Format identifies a probe-tool output dialect.
type Format int

// The supported dialects.
const (
	FormatLinux   Format = iota // traceroute(8)
	FormatWindows               // tracert.exe
	FormatScapy                 // scapy-based JSON prober
	FormatMTR                   // mtr --report
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatLinux:
		return "traceroute"
	case FormatWindows:
		return "tracert"
	case FormatScapy:
		return "scapy"
	case FormatMTR:
		return "mtr"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// NormHop is one hop of the normalized schema.
type NormHop struct {
	Hop   int       `json:"hop"`
	Addr  string    `json:"addr,omitempty"`
	RTTMs []float64 `json:"rtt_ms,omitempty"`
}

// BestRTT returns the minimum probe RTT for the hop, or 0 if unresponsive.
func (h NormHop) BestRTT() float64 {
	if len(h.RTTMs) == 0 {
		return 0
	}
	best := h.RTTMs[0]
	for _, v := range h.RTTMs[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// Normalized is the tool-independent traceroute record: the "identical
// structure JSON file" Gamma stores regardless of which tool ran.
type Normalized struct {
	Target  string    `json:"target"`
	Reached bool      `json:"reached"`
	Hops    []NormHop `json:"hops"`
}

// FirstHopRTT returns the earliest responding hop's best RTT (used by the
// source-based constraint to subtract local-network delay), or 0.
func (n Normalized) FirstHopRTT() float64 {
	for _, h := range n.Hops {
		if len(h.RTTMs) > 0 {
			return h.BestRTT()
		}
	}
	return 0
}

// LastHopRTT returns the destination's best RTT when reached, or 0.
func (n Normalized) LastHopRTT() float64 {
	if !n.Reached {
		return 0
	}
	for i := len(n.Hops) - 1; i >= 0; i-- {
		if len(n.Hops[i].RTTMs) > 0 {
			return n.Hops[i].BestRTT()
		}
	}
	return 0
}

// JSON renders the canonical normalized encoding.
func (n Normalized) JSON() ([]byte, error) { return json.Marshal(n) }

// FromResult converts a simulator result directly into the normalized form.
func FromResult(res netsim.TraceResult) Normalized {
	out := Normalized{Target: res.Dst.String(), Reached: res.Reached}
	for _, h := range res.Hops {
		nh := NormHop{Hop: h.Index}
		if h.Responded {
			nh.Addr = h.Addr.String()
			nh.RTTMs = append(nh.RTTMs, h.RTTMs...)
		}
		out.Hops = append(out.Hops, nh)
	}
	return out
}

// Render produces the tool's native text output for a simulator result,
// byte-compatible with what the parsers in this package accept.
func Render(res netsim.TraceResult, f Format) (string, error) {
	switch f {
	case FormatLinux:
		return renderLinux(res), nil
	case FormatWindows:
		return renderWindows(res), nil
	case FormatScapy:
		return renderScapy(res)
	case FormatMTR:
		return renderMTR(res), nil
	default:
		return "", fmt.Errorf("tracert: unknown format %v", f)
	}
}

// renderMTR emits `mtr --report` style output: one summary row per hop.
// The bytes match the original fmt.Fprintf implementation exactly (see
// the differential test against the reference renderers).
func renderMTR(res netsim.TraceResult) string {
	b := make([]byte, 0, 128+len(res.Hops)*88)
	b = append(b, "Start: 2024-03-16T09:00:00+0000\n"...)
	b = append(b, "HOST: gamma-volunteer -> "...)
	b = appendAddr(b, res.Dst)
	b = append(b, "    Loss%   Snt   Last   Avg  Best  Wrst StDev\n"...)
	for _, h := range res.Hops {
		b = appendPadInt(b, int64(h.Index), 3)
		if !h.Responded {
			b = append(b, ".|-- ???                      100.0     3    0.0   0.0   0.0   0.0   0.0\n"...)
			continue
		}
		best, wrst, sum := math.Inf(1), 0.0, 0.0
		for _, v := range h.RTTMs {
			if v < best {
				best = v
			}
			if v > wrst {
				wrst = v
			}
			sum += v
		}
		avg := sum / float64(len(h.RTTMs))
		var ss float64
		for _, v := range h.RTTMs {
			ss += (v - avg) * (v - avg)
		}
		stdev := math.Sqrt(ss / float64(len(h.RTTMs)))
		last := h.RTTMs[len(h.RTTMs)-1]
		b = append(b, ".|-- "...)
		addrStart := len(b)
		b = appendAddr(b, h.Addr)
		for len(b)-addrStart < 22 { // %-22s left justification
			b = append(b, ' ')
		}
		b = append(b, "   0.0%   "...)
		b = appendPadInt(b, int64(len(h.RTTMs)), 3)
		b = append(b, ' ', ' ')
		b = appendPadFloat(b, last, 5, 1)
		b = append(b, ' ')
		b = appendPadFloat(b, avg, 5, 1)
		b = append(b, ' ')
		b = appendPadFloat(b, best, 5, 1)
		b = append(b, ' ')
		b = appendPadFloat(b, wrst, 5, 1)
		b = append(b, ' ', ' ')
		b = appendPadFloat(b, stdev, 4, 1)
		b = append(b, '\n')
	}
	return string(b)
}

// ParseMTR parses `mtr --report` output. Only Best/Avg/Wrst are
// recoverable; they become the normalized probe samples.
func ParseMTR(text string) (Normalized, error) {
	if asciiSimple(text) {
		return parseMTRFast(text)
	}
	return parseMTRSlow(text)
}

func parseMTRSlow(text string) (Normalized, error) {
	lines := strings.Split(strings.TrimSpace(text), "\n")
	var out Normalized
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "HOST:") {
			fields := strings.Fields(line)
			for i, f := range fields {
				if f == "->" && i+1 < len(fields) {
					out.Target = fields[i+1]
				}
			}
			continue
		}
		sep := strings.Index(line, ".|--")
		if sep < 0 {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSpace(line[:sep]))
		if err != nil {
			continue
		}
		fields := strings.Fields(line[sep+len(".|--"):])
		hop := NormHop{Hop: idx}
		if len(fields) >= 7 && fields[0] != "???" {
			hop.Addr = fields[0]
			// fields: addr loss% snt last avg best wrst stdev
			best, err1 := strconv.ParseFloat(fields[5], 64)
			avg, err2 := strconv.ParseFloat(fields[4], 64)
			wrst, err3 := strconv.ParseFloat(fields[6], 64)
			if err1 == nil && err2 == nil && err3 == nil {
				hop.RTTMs = []float64{best, avg, wrst}
			}
		}
		out.Hops = append(out.Hops, hop)
	}
	if out.Target == "" {
		return Normalized{}, fmt.Errorf("tracert: not mtr output")
	}
	out.Reached = reached(out)
	return out, nil
}

func renderLinux(res netsim.TraceResult) string {
	b := make([]byte, 0, 96+len(res.Hops)*80)
	b = append(b, "traceroute to "...)
	b = appendAddr(b, res.Dst)
	b = append(b, " ("...)
	b = appendAddr(b, res.Dst)
	b = append(b, "), 30 hops max, 60 byte packets\n"...)
	for _, h := range res.Hops {
		b = appendPadInt(b, int64(h.Index), 2)
		if !h.Responded {
			b = append(b, "  * * *\n"...)
			continue
		}
		b = append(b, ' ', ' ')
		b = appendAddr(b, h.Addr)
		b = append(b, " ("...)
		b = appendAddr(b, h.Addr)
		b = append(b, ')')
		for _, rtt := range h.RTTMs {
			b = append(b, ' ', ' ')
			b = appendFixedFloat(b, rtt, 3)
			b = append(b, " ms"...)
		}
		b = append(b, '\n')
	}
	return string(b)
}

func renderWindows(res netsim.TraceResult) string {
	b := make([]byte, 0, 128+len(res.Hops)*64)
	b = append(b, "\nTracing route to "...)
	b = appendAddr(b, res.Dst)
	b = append(b, " over a maximum of 30 hops\n\n"...)
	for _, h := range res.Hops {
		b = appendPadInt(b, int64(h.Index), 3)
		if !h.Responded {
			b = append(b, "     *        *        *     Request timed out.\n"...)
			continue
		}
		for _, rtt := range h.RTTMs {
			ms := int(math.Round(rtt))
			if ms < 1 {
				b = append(b, "    <1 ms"...)
			} else {
				b = append(b, ' ', ' ')
				b = appendPadInt(b, int64(ms), 4)
				b = append(b, " ms"...)
			}
		}
		b = append(b, ' ', ' ')
		b = appendAddr(b, h.Addr)
		b = append(b, '\n')
	}
	b = append(b, "\nTrace complete.\n"...)
	return string(b)
}

// scapyRecord mirrors the JSON a scapy sr() post-processing script emits.
type scapyRecord struct {
	Target string     `json:"target"`
	Hops   []scapyHop `json:"hops"`
}

type scapyHop struct {
	TTL  int       `json:"ttl"`
	Src  string    `json:"src,omitempty"`
	RTTs []float64 `json:"rtts_s,omitempty"` // scapy reports seconds
}

func renderScapy(res netsim.TraceResult) (string, error) {
	// Hand-rolled marshal of scapyRecord, byte-identical to json.Marshal
	// for this schema (fields in struct order, omitempty semantics,
	// canonical float encoding): the record's strings are IP addresses, so
	// no escaping can occur.
	for _, h := range res.Hops {
		for _, ms := range h.RTTMs {
			if math.IsInf(ms, 0) || math.IsNaN(ms) {
				return "", fmt.Errorf("tracert: unsupported RTT value %v", ms)
			}
		}
	}
	b := make([]byte, 0, 64+len(res.Hops)*72)
	b = append(b, `{"target":"`...)
	b = appendAddr(b, res.Dst)
	b = append(b, `","hops":`...)
	if len(res.Hops) == 0 {
		b = append(b, "null}"...)
		return string(b), nil
	}
	b = append(b, '[')
	for i, h := range res.Hops {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"ttl":`...)
		b = strconv.AppendInt(b, int64(h.Index), 10)
		if h.Responded {
			b = append(b, `,"src":"`...)
			b = appendAddr(b, h.Addr)
			b = append(b, '"')
			if len(h.RTTMs) > 0 {
				b = append(b, `,"rtts_s":[`...)
				for j, ms := range h.RTTMs {
					if j > 0 {
						b = append(b, ',')
					}
					b = appendJSONFloat(b, ms/1000)
				}
				b = append(b, ']')
			}
		}
		b = append(b, '}')
	}
	b = append(b, "]}"...)
	return string(b), nil
}

// Detect guesses the dialect of a probe-tool output.
func Detect(text string) (Format, error) {
	t := strings.TrimSpace(text)
	switch {
	case strings.HasPrefix(t, "traceroute to "):
		return FormatLinux, nil
	case strings.HasPrefix(t, "Tracing route to "):
		return FormatWindows, nil
	case strings.HasPrefix(t, "{"):
		return FormatScapy, nil
	case strings.HasPrefix(t, "Start:") || strings.HasPrefix(t, "HOST:"):
		return FormatMTR, nil
	default:
		return 0, fmt.Errorf("tracert: unrecognized output (starts %q)", head(t, 24))
	}
}

func head(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Parse auto-detects the dialect and normalizes the output.
func Parse(text string) (Normalized, error) {
	f, err := Detect(text)
	if err != nil {
		return Normalized{}, err
	}
	switch f {
	case FormatLinux:
		return ParseLinux(text)
	case FormatWindows:
		return ParseWindows(text)
	case FormatMTR:
		return ParseMTR(text)
	default:
		return ParseScapy(text)
	}
}

// ParseLinux parses traceroute(8) output.
func ParseLinux(text string) (Normalized, error) {
	if asciiSimple(text) {
		return parseLinuxFast(text)
	}
	return parseLinuxSlow(text)
}

func parseLinuxSlow(text string) (Normalized, error) {
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "traceroute to ") {
		return Normalized{}, fmt.Errorf("tracert: not traceroute output")
	}
	var out Normalized
	// Header: traceroute to HOST (IP), ...
	if i := strings.Index(lines[0], "("); i >= 0 {
		if j := strings.Index(lines[0][i:], ")"); j > 0 {
			out.Target = lines[0][i+1 : i+j]
		}
	}
	if out.Target == "" {
		return Normalized{}, fmt.Errorf("tracert: malformed traceroute header %q", lines[0])
	}
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil {
			return Normalized{}, fmt.Errorf("tracert: bad hop index in %q", line)
		}
		hop := NormHop{Hop: idx}
		if fields[1] != "*" {
			hop.Addr = fields[1]
			for k := 2; k+1 < len(fields); k++ {
				if fields[k+1] == "ms" {
					v, err := strconv.ParseFloat(fields[k], 64)
					if err == nil {
						hop.RTTMs = append(hop.RTTMs, v)
					}
				}
			}
		}
		out.Hops = append(out.Hops, hop)
	}
	out.Reached = reached(out)
	return out, nil
}

// ParseWindows parses tracert.exe output.
func ParseWindows(text string) (Normalized, error) {
	if asciiSimple(text) {
		return parseWindowsFast(text)
	}
	return parseWindowsSlow(text)
}

func parseWindowsSlow(text string) (Normalized, error) {
	lines := strings.Split(strings.TrimSpace(text), "\n")
	var out Normalized
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Tracing route to ") {
			rest := strings.TrimPrefix(line, "Tracing route to ")
			out.Target = strings.Fields(rest)[0]
			continue
		}
		if line == "" || strings.HasPrefix(line, "Trace complete") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil {
			continue // stray prose
		}
		hop := NormHop{Hop: idx}
		if strings.Contains(line, "Request timed out") {
			out.Hops = append(out.Hops, hop)
			continue
		}
		// Fields alternate "<n> ms" or "*" three times, then the address.
		rest := fields[1:]
		for i := 0; i < len(rest); i++ {
			switch {
			case rest[i] == "*":
				// lost probe
			case rest[i] == "<1" && i+1 < len(rest) && rest[i+1] == "ms":
				hop.RTTMs = append(hop.RTTMs, 0.5)
				i++
			case i+1 < len(rest) && rest[i+1] == "ms":
				if v, err := strconv.ParseFloat(rest[i], 64); err == nil {
					hop.RTTMs = append(hop.RTTMs, v)
					i++
				}
			default:
				hop.Addr = rest[i]
			}
		}
		out.Hops = append(out.Hops, hop)
	}
	if out.Target == "" {
		return Normalized{}, fmt.Errorf("tracert: not tracert output")
	}
	out.Reached = reached(out)
	return out, nil
}

// ParseScapy parses the scapy JSON record. The strict scanner handles the
// canonical compact shape without the reflection round trip; anything
// else (whitespace, escapes, reordered keys) falls back to encoding/json.
func ParseScapy(text string) (Normalized, error) {
	rec, ok := scanScapy(text)
	if !ok {
		rec = scapyRecord{}
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return Normalized{}, fmt.Errorf("tracert: bad scapy record: %w", err)
		}
	}
	if rec.Target == "" {
		return Normalized{}, fmt.Errorf("tracert: scapy record missing target")
	}
	out := Normalized{Target: rec.Target}
	for _, sh := range rec.Hops {
		hop := NormHop{Hop: sh.TTL, Addr: sh.Src}
		for _, s := range sh.RTTs {
			hop.RTTMs = append(hop.RTTMs, round3(s*1000))
		}
		out.Hops = append(out.Hops, hop)
	}
	out.Reached = reached(out)
	return out, nil
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// reached infers completion: the last responding hop answered from the
// target address itself.
func reached(n Normalized) bool {
	for i := len(n.Hops) - 1; i >= 0; i-- {
		if n.Hops[i].Addr != "" {
			return n.Hops[i].Addr == n.Target
		}
	}
	return false
}
