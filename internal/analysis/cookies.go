package analysis

import (
	"sort"

	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/stats"
)

// CookieStats summarizes third-party cookie exposure for one country —
// the companion measurement to the governmental-cookie studies the paper
// builds on (Götze et al., §3.2's motivation for auditing T_gov).
type CookieStats struct {
	Country string `json:"country"`
	// SitesWithThirdPartyCookiesPct is the share of loaded sites where at
	// least one third-party response set a cookie.
	SitesWithThirdPartyCookiesPct float64 `json:"sites_with_tp_cookies_pct"`
	// GovSitesWithThirdPartyCookiesPct restricts the above to T_gov.
	GovSitesWithThirdPartyCookiesPct float64 `json:"gov_sites_with_tp_cookies_pct"`
	// MeanThirdPartyCookiesPerSite averages the count over loaded sites.
	MeanThirdPartyCookiesPerSite float64 `json:"mean_tp_cookies_per_site"`
	// TopCookieNames lists the most common third-party cookie names.
	TopCookieNames []string `json:"top_cookie_names,omitempty"`
}

// Cookies computes per-country third-party cookie statistics from the raw
// volunteer datasets (cookies are request-level data that the analyzed
// corpus intentionally drops).
func Cookies(datasets []*core.Dataset) []CookieStats {
	var out []CookieStats
	for _, ds := range datasets {
		cs := CookieStats{Country: ds.Country}
		loaded, tpSites, govLoaded, govTPSites, total := 0, 0, 0, 0, 0
		names := map[string]int{}
		for _, p := range ds.Pages {
			if !p.Load.OK {
				continue
			}
			loaded++
			isGov := p.Target.Kind == core.KindGovernment
			if isGov {
				govLoaded++
			}
			siteTP := 0
			for _, r := range p.Load.Requests {
				if r.Blocked || !r.ThirdParty || len(r.SetCookies) == 0 {
					continue
				}
				siteTP += len(r.SetCookies)
				for _, n := range r.SetCookies {
					names[n]++
				}
			}
			total += siteTP
			if siteTP > 0 {
				tpSites++
				if isGov {
					govTPSites++
				}
			}
		}
		cs.SitesWithThirdPartyCookiesPct = stats.Percent(tpSites, loaded)
		cs.GovSitesWithThirdPartyCookiesPct = stats.Percent(govTPSites, govLoaded)
		if loaded > 0 {
			cs.MeanThirdPartyCookiesPerSite = float64(total) / float64(loaded)
		}
		type kv struct {
			name  string
			count int
		}
		var list []kv
		for n, c := range names {
			list = append(list, kv{n, c})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].count != list[j].count {
				return list[i].count > list[j].count
			}
			return list[i].name < list[j].name
		})
		for i, e := range list {
			if i >= 5 {
				break
			}
			cs.TopCookieNames = append(cs.TopCookieNames, e.name)
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}
