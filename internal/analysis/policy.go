package analysis

import (
	"sort"

	"github.com/gamma-suite/gamma/internal/stats"
)

// PolicyInfo describes one country's data-localization regulation
// (Table 1 inputs).
type PolicyInfo struct {
	Type    string `json:"type"` // CS, PA, AC, TA, NR
	Enacted bool   `json:"enacted"`
	Note    string `json:"note,omitempty"`
}

// policyStrictness ranks regulation types by decreasing strictness.
func policyStrictness(t string) int {
	switch t {
	case "CS":
		return 4
	case "PA":
		return 3
	case "AC":
		return 2
	case "TA":
		return 1
	default:
		return 0
	}
}

// PolicyRow is one row of Table 1.
type PolicyRow struct {
	Country     string  `json:"country"`
	Type        string  `json:"type"`
	Enacted     bool    `json:"enacted"`
	NonLocalPct float64 `json:"non_local_pct"`
	Note        string  `json:"note,omitempty"`
}

// Table1 joins measured overall non-local prevalence with the policy
// registry, sorted by decreasing strictness then country (the paper's
// ordering).
func Table1(prev []Prevalence, policies map[string]PolicyInfo) []PolicyRow {
	byCC := map[string]Prevalence{}
	for _, p := range prev {
		byCC[p.Country] = p
	}
	var out []PolicyRow
	for cc, pol := range policies {
		out = append(out, PolicyRow{
			Country:     cc,
			Type:        pol.Type,
			Enacted:     pol.Enacted,
			NonLocalPct: byCC[cc].OverallPct,
			Note:        pol.Note,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := policyStrictness(out[i].Type), policyStrictness(out[j].Type)
		if si != sj {
			return si > sj
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// PolicyTrend correlates policy strictness with the measured non-local
// rate using Spearman rank correlation (strictness is ordinal). The paper
// reports "no obvious impact... in fact, a weak negative trend: more
// permissive countries have fewer non-local trackers", i.e. a POSITIVE
// correlation between strictness rank and non-local percentage.
func PolicyTrend(rows []PolicyRow) (float64, error) {
	xs := make([]float64, len(rows))
	ys := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = float64(policyStrictness(r.Type))
		ys[i] = r.NonLocalPct
	}
	return stats.Spearman(xs, ys)
}

// MeanByPolicyType averages the non-local rate per regulation class.
func MeanByPolicyType(rows []PolicyRow) map[string]float64 {
	sums := map[string][]float64{}
	for _, r := range rows {
		sums[r.Type] = append(sums[r.Type], r.NonLocalPct)
	}
	out := map[string]float64{}
	for t, vs := range sums {
		out[t] = stats.Mean(vs)
	}
	return out
}
