package analysis

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/rng"
)

// randomFlows draws a random source→dest flow matrix. Every draw is keyed
// by the trial index, so failures reproduce exactly.
func randomFlows(r *rand.Rand) []Flow {
	nSrc := 2 + r.IntN(8)
	nDst := 2 + r.IntN(10)
	var flows []Flow
	for s := 0; s < nSrc; s++ {
		for d := 0; d < nDst; d++ {
			if r.Float64() < 0.4 {
				continue // sparse matrix, like the real Fig 5
			}
			flows = append(flows, Flow{
				Source: fmt.Sprintf("S%02d", s),
				Dest:   fmt.Sprintf("D%02d", d),
				Sites:  1 + r.IntN(50),
			})
		}
	}
	return flows
}

// TestFig5FlowSharesSumToOne: for every source country with outgoing flow,
// the normalized shares must sum to 1 (within float tolerance), and every
// share must be in (0, 1].
func TestFig5FlowSharesSumToOne(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		r := rng.New(99, "prop/fig5", fmt.Sprint(trial))
		flows := randomFlows(r)
		shares := Fig5FlowShares(flows)
		if len(shares) != len(flows) {
			t.Fatalf("trial %d: %d shares for %d flows", trial, len(shares), len(flows))
		}
		sums := map[string]float64{}
		for _, s := range shares {
			if s.Share <= 0 || s.Share > 1 {
				t.Fatalf("trial %d: share %v out of (0,1]", trial, s)
			}
			sums[s.Source] += s.Share
		}
		for src, sum := range sums {
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("trial %d: source %s shares sum to %.12f, want 1", trial, src, sum)
			}
		}
	}
}

// TestFig3CorrelationProperties: Pearson correlation is symmetric under
// swapping the two prevalence columns and always lies in [-1, 1].
func TestFig3CorrelationProperties(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		r := rng.New(99, "prop/fig3", fmt.Sprint(trial))
		n := 3 + r.IntN(20)
		prev := make([]Prevalence, n)
		swapped := make([]Prevalence, n)
		for i := range prev {
			reg := r.Float64() * 100
			gov := r.Float64() * 100
			if r.Float64() < 0.3 {
				gov = 0.7*reg + r.Float64()*10 // inject correlation sometimes
			}
			prev[i] = Prevalence{Country: fmt.Sprintf("C%02d", i), RegionalPct: reg, GovernmentPct: gov}
			swapped[i] = Prevalence{Country: prev[i].Country, RegionalPct: gov, GovernmentPct: reg}
		}
		corr, err := Fig3Correlation(prev)
		if err != nil {
			continue // degenerate draw (zero variance) is allowed to error
		}
		if corr < -1-1e-12 || corr > 1+1e-12 {
			t.Fatalf("trial %d: correlation %v outside [-1,1]", trial, corr)
		}
		swapCorr, err := Fig3Correlation(swapped)
		if err != nil {
			t.Fatalf("trial %d: swapped columns errored: %v", trial, err)
		}
		if math.Abs(corr-swapCorr) > 1e-9 {
			t.Fatalf("trial %d: correlation not symmetric: %v vs %v", trial, corr, swapCorr)
		}
	}
}

// TestTallyFunnelInvariants: for any verdict multiset, the tally partitions
// the total (Total == Local + NonLocal + Discarded) and the per-stage
// counts partition the discards.
func TestTallyFunnelInvariants(t *testing.T) {
	stages := []geoloc.Stage{
		"invalid-address", "no-geolocation", "source-missing",
		"source-unreachable", "source-sol", "dest-sol", "dest-too-far",
	}
	for trial := 0; trial < 200; trial++ {
		r := rng.New(99, "prop/tally", fmt.Sprint(trial))
		n := r.IntN(200)
		vs := make([]geoloc.Verdict, n)
		for i := range vs {
			switch r.IntN(3) {
			case 0:
				vs[i].Class = geoloc.Local
			case 1:
				vs[i].Class = geoloc.NonLocal
			default:
				vs[i].Class = geoloc.Discarded
				vs[i].Stage = stages[r.IntN(len(stages))]
			}
		}
		fc := geoloc.Tally(vs)
		if fc.Total != n {
			t.Fatalf("trial %d: total %d != %d verdicts", trial, fc.Total, n)
		}
		if fc.Local+fc.NonLocal+fc.Discarded != fc.Total {
			t.Fatalf("trial %d: classes do not partition total: %+v", trial, fc)
		}
		// The funnel narrows monotonically: no bucket may exceed the total.
		for _, v := range []int{fc.Local, fc.NonLocal, fc.Discarded} {
			if v < 0 || v > fc.Total {
				t.Fatalf("trial %d: bucket out of range: %+v", trial, fc)
			}
		}
		byStage := 0
		for _, c := range fc.ByStage {
			byStage += c
		}
		if byStage != fc.Discarded {
			t.Fatalf("trial %d: stage counts %d != discarded %d", trial, byStage, fc.Discarded)
		}
	}
}

// TestOrgTotalsConservation: aggregating per-source org flows into
// study-wide totals must conserve the overall flow sum and each org's sum.
func TestOrgTotalsConservation(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		r := rng.New(99, "prop/orgs", fmt.Sprint(trial))
		nSrc, nOrg := 1+r.IntN(8), 1+r.IntN(6)
		var flows []OrgFlow
		wantTotal := 0
		wantByOrg := map[string]int{}
		for s := 0; s < nSrc; s++ {
			for o := 0; o < nOrg; o++ {
				if r.Float64() < 0.3 {
					continue
				}
				f := OrgFlow{
					Source: fmt.Sprintf("S%02d", s),
					Org:    fmt.Sprintf("Org%02d", o),
					Sites:  1 + r.IntN(40),
				}
				flows = append(flows, f)
				wantTotal += f.Sites
				wantByOrg[f.Org] += f.Sites
			}
		}
		totals := OrgTotals(flows)
		gotTotal := 0
		for _, f := range totals {
			gotTotal += f.Sites
			if f.Sites != wantByOrg[f.Org] {
				t.Fatalf("trial %d: org %s total %d, want %d", trial, f.Org, f.Sites, wantByOrg[f.Org])
			}
		}
		if gotTotal != wantTotal {
			t.Fatalf("trial %d: total flow %d, want %d (flow not conserved)", trial, gotTotal, wantTotal)
		}
		if len(totals) != len(wantByOrg) {
			t.Fatalf("trial %d: %d orgs in totals, want %d", trial, len(totals), len(wantByOrg))
		}
	}
}
