package analysis

import (
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/pipeline"
)

// figureIDs is the canonical identifier list for the figure/table payloads
// the serving layer exposes at /v1/figures/{id}. Order is the paper's.
var figureIDs = []string{
	"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1",
}

// FigureIDs returns the identifiers of every servable figure payload, in
// presentation order. The returned slice is fresh; callers may mutate it.
func FigureIDs() []string {
	return append([]string(nil), figureIDs...)
}

// Fig2Payload bundles both halves of Figure 2.
type Fig2Payload struct {
	Composition []Composition `json:"composition"`
	LoadSuccess []LoadSuccess `json:"load_success"`
}

// Fig3Payload is the Figure 3 prevalence data with its headline statistics.
type Fig3Payload struct {
	Prevalence  []Prevalence `json:"prevalence"`
	Correlation float64      `json:"reg_gov_correlation"`
}

// Fig5Payload bundles the Figure 5 flow matrix in all three renderings.
type Fig5Payload struct {
	Flows      []Flow      `json:"flows"`
	Shares     []FlowShare `json:"shares"`
	DestShares []DestShare `json:"dest_shares"`
}

// Fig8Payload bundles the org flows with their per-organization totals.
type Fig8Payload struct {
	Flows  []OrgFlow `json:"flows"`
	Totals []OrgFlow `json:"totals"`
}

// Figure computes one figure/table payload by identifier. Every payload is
// a deterministic pure function of the analyzed corpus: the underlying
// builders emit sorted slices, and the only maps that appear in payloads
// (Fig 9 counts, funnel stages) are serialized key-sorted by encoding/json.
// The second return is false for unknown identifiers.
func Figure(id string, res *pipeline.Result, reg *geo.Registry, policies map[string]PolicyInfo) (any, bool) {
	switch id {
	case "fig2":
		return Fig2Payload{Composition: Fig2Composition(res), LoadSuccess: Fig2LoadSuccess(res)}, true
	case "fig3":
		prev := Fig3Prevalence(res)
		corr, err := Fig3Correlation(prev)
		if err != nil {
			corr = 0
		}
		return Fig3Payload{Prevalence: prev, Correlation: corr}, true
	case "fig4":
		return Fig4Distribution(res), true
	case "fig5":
		flows := Fig5CountryFlows(res)
		return Fig5Payload{
			Flows:      flows,
			Shares:     Fig5FlowShares(flows),
			DestShares: Fig5DestShares(res),
		}, true
	case "fig6":
		return Fig6ContinentFlows(res, reg), true
	case "fig7":
		return Fig7HostingCounts(res), true
	case "fig8":
		flows := Fig8OrgFlows(res)
		return Fig8Payload{Flows: flows, Totals: OrgTotals(flows)}, true
	case "fig9":
		return Fig9DomainFrequency(res), true
	case "table1":
		return Table1(Fig3Prevalence(res), policies), true
	default:
		return nil, false
	}
}
