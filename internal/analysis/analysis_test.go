package analysis

import (
	"math"
	"strings"
	"testing"

	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/pipeline"
)

// tracker builds a retained non-local tracker observation.
func tracker(domain, dest, org, orgCC string, firstParty bool) pipeline.DomainObs {
	return pipeline.DomainObs{
		Domain: domain, Class: geoloc.NonLocal, DestCountry: dest,
		DestCity: dest, IsTracker: true, Org: org, OrgCountry: orgCC,
		FirstParty: firstParty,
	}
}

// testResult fabricates a tiny two-country corpus:
//
//	PK: 3 regional sites (2 with FR trackers, 1 clean), 2 gov sites (1 with
//	    DE tracker), one failed load, one opt-out.
//	NZ: 2 regional sites, both flowing to AU.
func testResult() *pipeline.Result {
	pk := &pipeline.CountryResult{
		Country: "PK", Targets: 7, OptOuts: 1, LoadedOK: 5,
		Verdicts: map[string]pipeline.DomainObs{
			"a.googletagmanager.com": tracker("a.googletagmanager.com", "FR", "Google", "US", false),
			"b.doubleclick.net":      tracker("b.doubleclick.net", "FR", "Google", "US", false),
			"c.demdex-edge.net":      tracker("c.demdex-edge.net", "DE", "Adobe", "US", false),
			"cdn.localsite.pk":       {Domain: "cdn.localsite.pk", Class: geoloc.Local},
			"static.foreign.example": {Domain: "static.foreign.example", Class: geoloc.NonLocal, DestCountry: "DE", DestCity: "DE"},
			"dead.example":           {Domain: "dead.example", Class: geoloc.Discarded, Stage: geoloc.StageSourceSOL},
		},
		Sites: []pipeline.SiteResult{
			{Country: "PK", Site: "r1.com.pk", Kind: core.KindRegional, LoadOK: true,
				Domains: []pipeline.DomainObs{
					tracker("a.googletagmanager.com", "FR", "Google", "US", false),
					tracker("b.doubleclick.net", "FR", "Google", "US", false),
					{Domain: "cdn.localsite.pk", Class: geoloc.Local},
				}},
			{Country: "PK", Site: "r2.com.pk", Kind: core.KindRegional, LoadOK: true,
				Domains: []pipeline.DomainObs{
					tracker("a.googletagmanager.com", "FR", "Google", "US", false),
				}},
			{Country: "PK", Site: "r3.com.pk", Kind: core.KindRegional, LoadOK: true,
				Domains: []pipeline.DomainObs{
					{Domain: "cdn.localsite.pk", Class: geoloc.Local},
				}},
			{Country: "PK", Site: "g1.gov.pk", Kind: core.KindGovernment, LoadOK: true,
				Domains: []pipeline.DomainObs{
					tracker("c.demdex-edge.net", "DE", "Adobe", "US", false),
				}},
			{Country: "PK", Site: "g2.gov.pk", Kind: core.KindGovernment, LoadOK: true},
			{Country: "PK", Site: "failed.com.pk", Kind: core.KindRegional, LoadOK: false},
			{Country: "PK", Site: "optout.com.pk", Kind: core.KindRegional, OptedOut: true},
		},
	}
	nz := &pipeline.CountryResult{
		Country: "NZ", Targets: 2, LoadedOK: 2,
		Verdicts: map[string]pipeline.DomainObs{
			"x.doubleclick.net": tracker("x.doubleclick.net", "AU", "Google", "US", false),
			"g.google.co.nz":    tracker("g.google.co.nz", "AU", "Google", "US", true),
		},
		Sites: []pipeline.SiteResult{
			{Country: "NZ", Site: "kiwi.co.nz", Kind: core.KindRegional, LoadOK: true,
				Domains: []pipeline.DomainObs{
					tracker("x.doubleclick.net", "AU", "Google", "US", false),
				}},
			{Country: "NZ", Site: "google.co.nz", Kind: core.KindRegional, LoadOK: true,
				Domains: []pipeline.DomainObs{
					tracker("g.google.co.nz", "AU", "Google", "US", true),
				}},
		},
	}
	return &pipeline.Result{Countries: map[string]*pipeline.CountryResult{"PK": pk, "NZ": nz}}
}

func TestFig2(t *testing.T) {
	res := testResult()
	comp := Fig2Composition(res)
	if len(comp) != 2 {
		t.Fatalf("composition rows = %d", len(comp))
	}
	// NZ sorts before PK.
	if comp[1].Country != "PK" || comp[1].Regional != 4 || comp[1].Government != 2 {
		t.Errorf("PK composition = %+v", comp[1])
	}
	ls := Fig2LoadSuccess(res)
	if math.Abs(ls[1].Pct-100*5.0/6.0) > 0.01 {
		t.Errorf("PK load success = %v", ls[1].Pct)
	}
	if ls[0].Pct != 100 {
		t.Errorf("NZ load success = %v", ls[0].Pct)
	}
}

func TestFig3(t *testing.T) {
	prev := Fig3Prevalence(testResult())
	byCC := map[string]Prevalence{}
	for _, p := range prev {
		byCC[p.Country] = p
	}
	pk := byCC["PK"]
	if math.Abs(pk.RegionalPct-200.0/3) > 0.01 { // 2 of 3 loaded regional
		t.Errorf("PK regional prevalence = %v", pk.RegionalPct)
	}
	if pk.GovernmentPct != 50 {
		t.Errorf("PK government prevalence = %v", pk.GovernmentPct)
	}
	if math.Abs(pk.OverallPct-60) > 0.01 { // 3 of 5 loaded
		t.Errorf("PK overall = %v", pk.OverallPct)
	}
	if byCC["NZ"].RegionalPct != 100 {
		t.Errorf("NZ regional prevalence = %v", byCC["NZ"].RegionalPct)
	}
	if _, err := Fig3Correlation(prev); err != nil {
		t.Logf("correlation on 2 points: %v (expected, NZ gov has no sites)", err)
	}
}

func TestFig4(t *testing.T) {
	dist := Fig4Distribution(testResult())
	var pk Distribution
	for _, d := range dist {
		if d.Country == "PK" {
			pk = d
		}
	}
	if pk.Combined.N != 3 { // r1 (2), r2 (1), g1 (1): 3 sites with >=1
		t.Errorf("PK sites with trackers = %d", pk.Combined.N)
	}
	if pk.Regional.Median != 1.5 {
		t.Errorf("PK regional median = %v", pk.Regional.Median)
	}
}

func TestFig5(t *testing.T) {
	res := testResult()
	flows := Fig5CountryFlows(res)
	want := map[[2]string]int{
		{"PK", "FR"}: 2, {"PK", "DE"}: 1, {"NZ", "AU"}: 2,
	}
	if len(flows) != len(want) {
		t.Fatalf("flows = %+v", flows)
	}
	for _, f := range flows {
		if want[[2]string{f.Source, f.Dest}] != f.Sites {
			t.Errorf("flow %+v unexpected", f)
		}
	}
	shares := Fig5DestShares(res)
	if shares[0].Dest != "AU" && shares[0].Dest != "FR" {
		t.Errorf("top destination = %+v", shares[0])
	}
	if SitesWithNonLocal(res) != 5 {
		t.Errorf("sites with non-local = %d, want 5", SitesWithNonLocal(res))
	}
	for _, s := range shares {
		if s.Dest == "FR" && math.Abs(s.SitePct-40) > 0.01 { // 2 of 5
			t.Errorf("FR share = %v", s.SitePct)
		}
		if s.Dest == "DE" && s.GovSourceOnly != "PK" {
			t.Errorf("DE gov-source-only = %q", s.GovSourceOnly)
		}
	}
}

func TestFig6(t *testing.T) {
	res := testResult()
	flows := Fig6ContinentFlows(res, geo.Default())
	var asiaEurope, oceaniaOceania int
	for _, f := range flows {
		if f.Source == geo.Asia && f.Dest == geo.Europe {
			asiaEurope = f.Sites
		}
		if f.Source == geo.Oceania && f.Dest == geo.Oceania {
			oceaniaOceania = f.Sites
		}
	}
	if asiaEurope != 3 {
		t.Errorf("Asia->Europe = %d, want 3", asiaEurope)
	}
	if oceaniaOceania != 2 {
		t.Errorf("Oceania->Oceania = %d, want 2", oceaniaOceania)
	}
	inward := InwardFlowContinents(flows)
	if len(inward[geo.Europe]) == 0 {
		t.Error("Europe should receive inward flow")
	}
	if len(inward[geo.Africa]) != 0 {
		t.Error("Africa should receive no inward flow in this corpus")
	}
}

func TestFig7(t *testing.T) {
	counts := Fig7HostingCounts(testResult())
	byDest := map[string]int{}
	for _, h := range counts {
		byDest[h.Dest] = h.Domains
	}
	// static.foreign.example is non-local but NOT a tracker: excluded.
	if byDest["DE"] != 1 || byDest["FR"] != 2 || byDest["AU"] != 2 {
		t.Errorf("hosting counts = %v", byDest)
	}
}

func TestFig8(t *testing.T) {
	flows := Fig8OrgFlows(testResult())
	totals := OrgTotals(flows)
	if totals[0].Org != "Google" || totals[0].Sites != 4 {
		t.Errorf("top org = %+v", totals[0])
	}
	excl := ExclusiveOrgs(flows)
	if excl["Adobe"] != "PK" {
		t.Errorf("Adobe should be exclusive to PK: %v", excl)
	}
	if _, ok := excl["Google"]; ok {
		t.Error("Google is multi-country, not exclusive")
	}
}

func TestFig9(t *testing.T) {
	freqs := Fig9DomainFrequency(testResult())
	for _, df := range freqs {
		if df.Country == "PK" {
			if df.Counts["a.googletagmanager.com"] != 2 {
				t.Errorf("PK gtm frequency = %d", df.Counts["a.googletagmanager.com"])
			}
		}
	}
}

func TestTable1AndTrend(t *testing.T) {
	prev := Fig3Prevalence(testResult())
	rows := Table1(prev, map[string]PolicyInfo{
		"PK": {Type: "TA", Enacted: false},
		"NZ": {Type: "TA", Enacted: true},
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Country != "NZ" { // same strictness, alphabetical
		t.Errorf("row order: %+v", rows)
	}
	if _, err := PolicyTrend(rows); err == nil {
		t.Log("trend computed on degenerate data (same strictness) — expected error, got none")
	}
	means := MeanByPolicyType(rows)
	if len(means) != 1 {
		t.Errorf("means = %v", means)
	}
}

func TestOwnership(t *testing.T) {
	res := testResult()
	// Mark one tracker as AWS-hosted.
	obs := res.Countries["PK"].Verdicts["c.demdex-edge.net"]
	obs.HostASN = awsASN
	res.Countries["PK"].Verdicts["c.demdex-edge.net"] = obs
	own := Ownership(res)
	if own.Orgs != 2 {
		t.Errorf("orgs = %d, want 2 (Google, Adobe)", own.Orgs)
	}
	if own.HQSharePct["US"] != 100 {
		t.Errorf("US HQ share = %v", own.HQSharePct)
	}
	if own.AWSTrackers != 1 {
		t.Errorf("AWS trackers = %d", own.AWSTrackers)
	}
}

func TestFirstParty(t *testing.T) {
	fp := FirstParty(testResult())
	if fp.SitesWithNonLocal != 5 {
		t.Errorf("sites with non-local = %d", fp.SitesWithNonLocal)
	}
	if fp.SitesWithFirstParty != 1 {
		t.Errorf("sites with first-party = %d", fp.SitesWithFirstParty)
	}
	if fp.ByOrg["Google"] != 1 {
		t.Errorf("Google first-party sites = %d", fp.ByOrg["Google"])
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{40, 60})
	if m != 50 || s != 10 {
		t.Errorf("MeanStd = %v, %v", m, s)
	}
}

func TestCookies(t *testing.T) {
	ds := &pipeline.Result{} // unused; Cookies works on raw datasets
	_ = ds
	datasets := []*core.Dataset{{
		Country: "PK",
		Pages: []core.PageResult{
			{
				Target: core.Target{Domain: "a.com.pk", Kind: core.KindRegional},
				Load: core.PageRecord{OK: true, Requests: []core.RequestRecord{
					{Domain: "t.example", ThirdParty: true, SetCookies: []string{"_uid_google", "_trk_sess"}},
					{Domain: "static.a.com.pk", ThirdParty: false, SetCookies: []string{"first_party"}},
					{Domain: "blocked.example", ThirdParty: true, Blocked: true, SetCookies: []string{"_never"}},
				}},
			},
			{
				Target: core.Target{Domain: "g.gov.pk", Kind: core.KindGovernment},
				Load: core.PageRecord{OK: true, Requests: []core.RequestRecord{
					{Domain: "t.example", ThirdParty: true, SetCookies: []string{"_uid_google"}},
				}},
			},
			{
				Target: core.Target{Domain: "clean.gov.pk", Kind: core.KindGovernment},
				Load:   core.PageRecord{OK: true},
			},
			{Target: core.Target{Domain: "failed.pk"}, Load: core.PageRecord{OK: false}},
		},
	}}
	stats := Cookies(datasets)
	if len(stats) != 1 {
		t.Fatalf("stats = %d", len(stats))
	}
	cs := stats[0]
	if cs.SitesWithThirdPartyCookiesPct != 100.0*2/3 {
		t.Errorf("site pct = %v", cs.SitesWithThirdPartyCookiesPct)
	}
	if cs.GovSitesWithThirdPartyCookiesPct != 50 {
		t.Errorf("gov pct = %v", cs.GovSitesWithThirdPartyCookiesPct)
	}
	if cs.MeanThirdPartyCookiesPerSite != 1 { // 3 cookies over 3 loaded sites
		t.Errorf("mean = %v", cs.MeanThirdPartyCookiesPerSite)
	}
	if len(cs.TopCookieNames) == 0 || cs.TopCookieNames[0] != "_uid_google" {
		t.Errorf("top names = %v", cs.TopCookieNames)
	}
}

func TestAnswers(t *testing.T) {
	res := testResult()
	answers := Answers(res, geo.Default(), map[string]PolicyInfo{
		"PK": {Type: "TA", Enacted: false},
		"NZ": {Type: "CS", Enacted: true},
	})
	for _, rq := range []string{"RQ1", "RQ2", "RQ3", "RQ4", "RQ5"} {
		if answers[rq] == "" {
			t.Errorf("%s unanswered", rq)
		}
	}
	rendered := RenderAnswers(answers)
	if !strings.Contains(rendered, "RQ1:") || !strings.Contains(rendered, "RQ5:") {
		t.Error("rendered answers incomplete")
	}
	if !strings.Contains(answers["RQ3"], "Google") {
		t.Errorf("RQ3 should name the top org: %s", answers["RQ3"])
	}
}
