// Package analysis computes every table and figure in the paper's
// evaluation (§5–§7) from the pipeline's analyzed corpus: target
// composition and load success (Fig 2), non-local tracker prevalence and
// its reg/gov correlation (Fig 3), per-site distributions (Fig 4),
// country- and continent-level flow matrices (Figs 5–6), hosting-country
// domain counts (Fig 7), organization flows (Fig 8), per-domain frequency
// (Fig 9), the data-localization policy table (Table 1), and the §6.5/§6.7
// organization and first-party statistics.
package analysis

import (
	"sort"

	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/stats"
)

// ---------- Figure 2 ----------

// Composition is one country's target-list make-up (Fig 2a).
type Composition struct {
	Country    string `json:"country"`
	Regional   int    `json:"regional"`
	Government int    `json:"government"`
}

// Fig2Composition tallies T_reg and T_gov sizes per country.
func Fig2Composition(res *pipeline.Result) []Composition {
	var out []Composition
	for _, cc := range res.CountryCodes() {
		cr := res.Countries[cc]
		c := Composition{Country: cc}
		for _, s := range cr.Sites {
			if s.OptedOut {
				continue
			}
			if s.Kind == core.KindGovernment {
				c.Government++
			} else {
				c.Regional++
			}
		}
		out = append(out, c)
	}
	return out
}

// LoadSuccess is one country's page-load success rate (Fig 2b).
type LoadSuccess struct {
	Country string  `json:"country"`
	Pct     float64 `json:"pct"`
}

// Fig2LoadSuccess computes the share of (non-opted-out) targets whose page
// load succeeded.
func Fig2LoadSuccess(res *pipeline.Result) []LoadSuccess {
	var out []LoadSuccess
	for _, cc := range res.CountryCodes() {
		cr := res.Countries[cc]
		out = append(out, LoadSuccess{
			Country: cc,
			Pct:     stats.Percent(cr.LoadedOK, cr.Targets-cr.OptOuts),
		})
	}
	return out
}

// ---------- Figure 3 ----------

// Prevalence is one country's share of sites embedding at least one
// non-local tracker, split by site kind (Fig 3).
type Prevalence struct {
	Country       string  `json:"country"`
	RegionalPct   float64 `json:"regional_pct"`
	GovernmentPct float64 `json:"government_pct"`
	OverallPct    float64 `json:"overall_pct"` // Table 1's Non-Local column
}

// siteHasNonLocalTracker reports whether a loaded site embeds ≥1 retained
// non-local tracker.
func siteHasNonLocalTracker(s pipeline.SiteResult) bool {
	return len(s.NonLocalTrackers()) > 0
}

// Fig3Prevalence computes per-country prevalence over loaded sites.
func Fig3Prevalence(res *pipeline.Result) []Prevalence {
	var out []Prevalence
	for _, cc := range res.CountryCodes() {
		cr := res.Countries[cc]
		var regTot, regHit, govTot, govHit int
		for _, s := range cr.Sites {
			if !s.LoadOK {
				continue
			}
			hit := siteHasNonLocalTracker(s)
			if s.Kind == core.KindGovernment {
				govTot++
				if hit {
					govHit++
				}
			} else {
				regTot++
				if hit {
					regHit++
				}
			}
		}
		out = append(out, Prevalence{
			Country:       cc,
			RegionalPct:   stats.Percent(regHit, regTot),
			GovernmentPct: stats.Percent(govHit, govTot),
			OverallPct:    stats.Percent(regHit+govHit, regTot+govTot),
		})
	}
	return out
}

// Fig3Correlation returns the Pearson correlation between the regional and
// government prevalence vectors (the paper reports 0.89).
func Fig3Correlation(prev []Prevalence) (float64, error) {
	xs := make([]float64, len(prev))
	ys := make([]float64, len(prev))
	for i, p := range prev {
		xs[i], ys[i] = p.RegionalPct, p.GovernmentPct
	}
	return stats.Pearson(xs, ys)
}

// MeanStd summarizes a prevalence column (the paper: regional 46.16%
// σ 33.77, government 40.21% σ 31.5).
func MeanStd(values []float64) (mean, sigma float64) {
	return stats.Mean(values), stats.StdDev(values)
}

// ---------- Figure 4 ----------

// Distribution is a country's per-site non-local tracker-count summary.
type Distribution struct {
	Country    string        `json:"country"`
	Regional   stats.BoxPlot `json:"regional"`
	Government stats.BoxPlot `json:"government"`
	Combined   stats.BoxPlot `json:"combined"`
	Skewness   float64       `json:"skewness"`
}

// Fig4Distribution summarizes, per country, the number of non-local
// tracker domains on each site that has at least one.
func Fig4Distribution(res *pipeline.Result) []Distribution {
	var out []Distribution
	for _, cc := range res.CountryCodes() {
		cr := res.Countries[cc]
		var reg, gov, all []float64
		for _, s := range cr.Sites {
			if !s.LoadOK {
				continue
			}
			n := len(s.NonLocalTrackers())
			if n == 0 {
				continue
			}
			all = append(all, float64(n))
			if s.Kind == core.KindGovernment {
				gov = append(gov, float64(n))
			} else {
				reg = append(reg, float64(n))
			}
		}
		out = append(out, Distribution{
			Country:    cc,
			Regional:   stats.NewBoxPlot(reg),
			Government: stats.NewBoxPlot(gov),
			Combined:   stats.NewBoxPlot(all),
			Skewness:   stats.Skewness(all),
		})
	}
	return out
}

// ---------- Figure 5 ----------

// Flow is one source→destination edge weighted by websites.
type Flow struct {
	Source string `json:"source"`
	Dest   string `json:"dest"`
	Sites  int    `json:"sites"`
}

// Fig5CountryFlows computes the website-weighted flow matrix: for each
// source country and destination, the number of sites with at least one
// retained non-local tracker hosted there.
func Fig5CountryFlows(res *pipeline.Result) []Flow {
	counts := map[[2]string]int{}
	for _, cc := range res.CountryCodes() {
		for _, s := range res.Countries[cc].Sites {
			if !s.LoadOK {
				continue
			}
			seen := map[string]bool{}
			for _, d := range s.NonLocalTrackers() {
				if d.DestCountry == "" || seen[d.DestCountry] {
					continue
				}
				seen[d.DestCountry] = true
				counts[[2]string{cc, d.DestCountry}]++
			}
		}
	}
	out := make([]Flow, 0, len(counts))
	for k, n := range counts {
		out = append(out, Flow{Source: k[0], Dest: k[1], Sites: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sites != out[j].Sites {
			return out[i].Sites > out[j].Sites
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Dest < out[j].Dest
	})
	return out
}

// DestShare is a destination's share of tracking websites (Fig 5 text:
// France 43%, UK 24%, Germany 23%...).
type DestShare struct {
	Dest          string  `json:"dest"`
	SitePct       float64 `json:"site_pct"`
	Sites         int     `json:"sites"`
	SourceCount   int     `json:"source_countries"`
	GovSourceOnly string  `json:"gov_source_only,omitempty"` // set when exactly one source's gov sites flow here
}

// Fig5DestShares aggregates flows per destination: the percentage of all
// sites with non-local trackers that use at least one tracker hosted
// there, and how many source countries feed it.
func Fig5DestShares(res *pipeline.Result) []DestShare {
	sitesWithNL := 0
	destSites := map[string]int{}
	destSources := map[string]map[string]bool{}
	govSources := map[string]map[string]bool{}
	for _, cc := range res.CountryCodes() {
		for _, s := range res.Countries[cc].Sites {
			if !s.LoadOK {
				continue
			}
			nl := s.NonLocalTrackers()
			if len(nl) == 0 {
				continue
			}
			sitesWithNL++
			seen := map[string]bool{}
			for _, d := range nl {
				if d.DestCountry == "" || seen[d.DestCountry] {
					continue
				}
				seen[d.DestCountry] = true
				destSites[d.DestCountry]++
				if destSources[d.DestCountry] == nil {
					destSources[d.DestCountry] = map[string]bool{}
				}
				destSources[d.DestCountry][cc] = true
				if s.Kind == core.KindGovernment {
					if govSources[d.DestCountry] == nil {
						govSources[d.DestCountry] = map[string]bool{}
					}
					govSources[d.DestCountry][cc] = true
				}
			}
		}
	}
	var out []DestShare
	for dest, n := range destSites {
		ds := DestShare{
			Dest:        dest,
			Sites:       n,
			SitePct:     stats.Percent(n, sitesWithNL),
			SourceCount: len(destSources[dest]),
		}
		if len(govSources[dest]) == 1 {
			for cc := range govSources[dest] {
				ds.GovSourceOnly = cc
			}
		}
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sites != out[j].Sites {
			return out[i].Sites > out[j].Sites
		}
		return out[i].Dest < out[j].Dest
	})
	return out
}

// FlowShare is one cell of the row-normalized Fig 5 matrix: the fraction of
// a source country's tracking flow that lands in a destination.
type FlowShare struct {
	Source string  `json:"source"`
	Dest   string  `json:"dest"`
	Share  float64 `json:"share"`
}

// Fig5FlowShares normalizes the Fig 5 flow matrix per source country, so
// each source's outgoing shares sum to 1. Rows are sorted by source, then
// descending share, then destination, for a stable rendering order.
func Fig5FlowShares(flows []Flow) []FlowShare {
	totals := map[string]int{}
	for _, f := range flows {
		totals[f.Source] += f.Sites
	}
	out := make([]FlowShare, 0, len(flows))
	for _, f := range flows {
		out = append(out, FlowShare{
			Source: f.Source,
			Dest:   f.Dest,
			Share:  float64(f.Sites) / float64(totals[f.Source]),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Dest < out[j].Dest
	})
	return out
}

// SitesWithNonLocal counts loaded sites with ≥1 retained non-local tracker.
func SitesWithNonLocal(res *pipeline.Result) int {
	n := 0
	for _, cc := range res.CountryCodes() {
		for _, s := range res.Countries[cc].Sites {
			if s.LoadOK && siteHasNonLocalTracker(s) {
				n++
			}
		}
	}
	return n
}

// ---------- Figure 6 ----------

// ContinentFlow is one continent→continent edge.
type ContinentFlow struct {
	Source geo.Continent `json:"source"`
	Dest   geo.Continent `json:"dest"`
	Sites  int           `json:"sites"`
}

// Fig6ContinentFlows lifts the country flows to continents.
func Fig6ContinentFlows(res *pipeline.Result, reg *geo.Registry) []ContinentFlow {
	counts := map[[2]geo.Continent]int{}
	for _, f := range Fig5CountryFlows(res) {
		src, ok1 := reg.ContinentOf(f.Source)
		dst, ok2 := reg.ContinentOf(f.Dest)
		if !ok1 || !ok2 {
			continue
		}
		counts[[2]geo.Continent{src, dst}] += f.Sites
	}
	out := make([]ContinentFlow, 0, len(counts))
	for k, n := range counts {
		out = append(out, ContinentFlow{Source: k[0], Dest: k[1], Sites: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sites != out[j].Sites {
			return out[i].Sites > out[j].Sites
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Dest < out[j].Dest
	})
	return out
}

// InwardFlowContinents returns the continents that receive tracking flow
// from at least one *other* continent (the paper: Africa receives none;
// Europe receives from all).
func InwardFlowContinents(flows []ContinentFlow) map[geo.Continent][]geo.Continent {
	in := map[geo.Continent]map[geo.Continent]bool{}
	for _, f := range flows {
		if f.Source == f.Dest {
			continue
		}
		if in[f.Dest] == nil {
			in[f.Dest] = map[geo.Continent]bool{}
		}
		in[f.Dest][f.Source] = true
	}
	out := map[geo.Continent][]geo.Continent{}
	for dest, srcs := range in {
		for s := range srcs {
			out[dest] = append(out[dest], s)
		}
		sort.Slice(out[dest], func(i, j int) bool { return out[dest][i] < out[dest][j] })
	}
	return out
}

// ---------- Figure 7 ----------

// HostingCount is a destination country's count of distinct non-local
// tracking domains hosted there (Fig 7: Kenya 210, Germany 172...).
type HostingCount struct {
	Dest    string `json:"dest"`
	Domains int    `json:"domains"`
}

// Fig7HostingCounts counts distinct retained non-local tracker domains per
// hosting country.
func Fig7HostingCounts(res *pipeline.Result) []HostingCount {
	perDest := map[string]map[string]bool{}
	for _, cc := range res.CountryCodes() {
		for _, obs := range res.Countries[cc].Verdicts {
			if obs.Class != geoloc.NonLocal || !obs.IsTracker || obs.DestCountry == "" {
				continue
			}
			if perDest[obs.DestCountry] == nil {
				perDest[obs.DestCountry] = map[string]bool{}
			}
			perDest[obs.DestCountry][obs.Domain] = true
		}
	}
	out := make([]HostingCount, 0, len(perDest))
	for dest, set := range perDest {
		out = append(out, HostingCount{Dest: dest, Domains: len(set)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domains != out[j].Domains {
			return out[i].Domains > out[j].Domains
		}
		return out[i].Dest < out[j].Dest
	})
	return out
}

// ---------- Figure 8 ----------

// OrgFlow is one source→organization edge weighted by websites.
type OrgFlow struct {
	Source string `json:"source"`
	Org    string `json:"org"`
	Sites  int    `json:"sites"`
}

// Fig8OrgFlows computes source→organization flows for retained non-local
// trackers. Domains without a known owner aggregate under "(unknown)".
func Fig8OrgFlows(res *pipeline.Result) []OrgFlow {
	counts := map[[2]string]int{}
	for _, cc := range res.CountryCodes() {
		for _, s := range res.Countries[cc].Sites {
			if !s.LoadOK {
				continue
			}
			seen := map[string]bool{}
			for _, d := range s.NonLocalTrackers() {
				org := d.Org
				if org == "" {
					org = "(unknown)"
				}
				if seen[org] {
					continue
				}
				seen[org] = true
				counts[[2]string{cc, org}]++
			}
		}
	}
	out := make([]OrgFlow, 0, len(counts))
	for k, n := range counts {
		out = append(out, OrgFlow{Source: k[0], Org: k[1], Sites: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sites != out[j].Sites {
			return out[i].Sites > out[j].Sites
		}
		if out[i].Org != out[j].Org {
			return out[i].Org < out[j].Org
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// OrgTotals sums Fig 8 flows per organization, sorted descending.
func OrgTotals(flows []OrgFlow) []OrgFlow {
	sum := map[string]int{}
	for _, f := range flows {
		sum[f.Org] += f.Sites
	}
	out := make([]OrgFlow, 0, len(sum))
	for org, n := range sum {
		out = append(out, OrgFlow{Org: org, Sites: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sites != out[j].Sites {
			return out[i].Sites > out[j].Sites
		}
		return out[i].Org < out[j].Org
	})
	return out
}

// ExclusiveOrgs returns organizations observed in exactly one source
// country (the paper found orgs exclusive to Jordan, Qatar, the UK,
// Rwanda, Uganda and Sri Lanka).
func ExclusiveOrgs(flows []OrgFlow) map[string]string {
	sources := map[string]map[string]bool{}
	for _, f := range flows {
		if sources[f.Org] == nil {
			sources[f.Org] = map[string]bool{}
		}
		sources[f.Org][f.Source] = true
	}
	out := map[string]string{}
	for org, srcs := range sources {
		if len(srcs) == 1 && org != "(unknown)" {
			for cc := range srcs {
				out[org] = cc
			}
		}
	}
	return out
}

// ---------- Figure 9 ----------

// DomainFrequency is, per country, how many sites each non-local tracking
// domain appears on (Appendix A).
type DomainFrequency struct {
	Country string         `json:"country"`
	Counts  map[string]int `json:"counts"`
}

// Fig9DomainFrequency computes the per-domain site frequency per country.
func Fig9DomainFrequency(res *pipeline.Result) []DomainFrequency {
	var out []DomainFrequency
	for _, cc := range res.CountryCodes() {
		df := DomainFrequency{Country: cc, Counts: map[string]int{}}
		for _, s := range res.Countries[cc].Sites {
			if !s.LoadOK {
				continue
			}
			for _, d := range s.NonLocalTrackers() {
				df.Counts[d.Domain]++
			}
		}
		out = append(out, df)
	}
	return out
}
