package analysis

import (
	"fmt"
	"strings"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/pipeline"
)

// Answers generates prose answers to the paper's five research questions
// (§6) from the measured corpus — the narrative the figures support,
// regenerated from data rather than copied.
func Answers(res *pipeline.Result, reg *geo.Registry, policies map[string]PolicyInfo) map[string]string {
	out := map[string]string{}

	// RQ1: prevalence and heterogeneity.
	prev := Fig3Prevalence(res)
	var regs, govs []float64
	hi, lo := "", ""
	var hiV, loV float64 = -1, 101
	for _, p := range prev {
		regs = append(regs, p.RegionalPct)
		govs = append(govs, p.GovernmentPct)
		if p.OverallPct > hiV {
			hiV, hi = p.OverallPct, p.Country
		}
		if p.OverallPct < loV {
			loV, lo = p.OverallPct, p.Country
		}
	}
	rm, rs := MeanStd(regs)
	gm, _ := MeanStd(govs)
	corr, _ := Fig3Correlation(prev)
	out["RQ1"] = fmt.Sprintf(
		"Non-local trackers are common but highly heterogeneous: on average "+
			"%.1f%% of regional and %.1f%% of government sites embed at least one "+
			"(σ %.1f points), ranging from %s at %.1f%% down to %s at %.1f%%. "+
			"Regional and government prevalence move together (r=%.2f).",
		rm, gm, rs, hi, hiV, lo, loV, corr)

	// RQ2: hubs and flow distribution.
	shares := Fig5DestShares(res)
	topDest, topPct := "", 0.0
	if len(shares) > 0 {
		topDest, topPct = shares[0].Dest, shares[0].SitePct
	}
	cont := Fig6ContinentFlows(res, reg)
	inward := InwardFlowContinents(cont)
	sinks := 0
	for range inward {
		sinks++
	}
	out["RQ2"] = fmt.Sprintf(
		"%s is the dominant hub, receiving tracking flows from %.1f%% of all "+
			"sites with non-local trackers; Europe is the only continent drawing "+
			"inward flow from %d other continents, while Africa draws none.",
		topDest, topPct, len(inward[geo.Europe]))

	// RQ3: organizations and hosting diversity.
	totals := OrgTotals(Fig8OrgFlows(res))
	own := Ownership(res)
	topOrg := "(none)"
	if len(totals) > 0 {
		topOrg = totals[0].Org
	}
	out["RQ3"] = fmt.Sprintf(
		"%d distinct organizations operate the observed non-local trackers, "+
			"led by %s; %.0f%% are US-headquartered although their serving "+
			"infrastructure concentrates in Europe and regional hubs, with %d "+
			"third-party trackers riding AWS and %d Google Cloud.",
		own.Orgs, topOrg, own.HQSharePct["US"], own.AWSTrackers, own.GCPTrackers)

	// RQ4: first-party non-local trackers.
	fp := FirstParty(res)
	googlePct := 0.0
	if fp.SitesWithFirstParty > 0 {
		googlePct = 100 * float64(fp.ByOrg["Google"]) / float64(fp.SitesWithFirstParty)
	}
	out["RQ4"] = fmt.Sprintf(
		"First-party non-local tracking is rare: %d of %d sites with non-local "+
			"trackers embed one belonging to the site's own organization, and "+
			"%.0f%% of those are Google's country-specific properties.",
		fp.SitesWithFirstParty, fp.SitesWithNonLocal, googlePct)

	// RQ5: policy impact.
	rows := Table1(prev, policies)
	trend, _ := PolicyTrend(rows)
	direction := "no"
	if trend > 0.1 {
		direction = "if anything an inverse"
	}
	out["RQ5"] = fmt.Sprintf(
		"Data-localization regulation shows %s relationship with measured "+
			"non-local tracking (strictness/rate rank correlation %+.2f): "+
			"stricter countries do not exhibit fewer foreign trackers, "+
			"consistent with adherence being driven by nearby infrastructure "+
			"availability rather than law.",
		direction, trend)
	return out
}

// RenderAnswers writes the RQ answers in order.
func RenderAnswers(answers map[string]string) string {
	var b strings.Builder
	for _, rq := range []string{"RQ1", "RQ2", "RQ3", "RQ4", "RQ5"} {
		if a, ok := answers[rq]; ok {
			fmt.Fprintf(&b, "%s: %s\n\n", rq, a)
		}
	}
	return b.String()
}
