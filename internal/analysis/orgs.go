package analysis

import (
	"sort"

	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/stats"
)

// OwnershipStats summarizes §6.5: who owns the observed non-local tracking
// domains and where their infrastructure is hosted.
type OwnershipStats struct {
	// Orgs is the number of distinct organizations owning observed
	// non-local tracking domains (~70 in the paper).
	Orgs int `json:"orgs"`
	// HQSharePct maps HQ country to its share of those orgs (paper: 50%
	// US, 10% UK, 4% NL, 4% IL).
	HQSharePct map[string]float64 `json:"hq_share_pct"`
	// AWSTrackers / GCPTrackers count distinct third-party tracker domains
	// hosted on the big clouds (paper: 50 on AWS, 5 on Google Cloud).
	AWSTrackers int `json:"aws_trackers"`
	GCPTrackers int `json:"gcp_trackers"`
	// KenyaAWSOrgs lists orgs observed on Amazon addresses in Nairobi from
	// Ugandan/Rwandan vantage points (the paper's CloudFront-edge finding).
	KenyaAWSOrgs []string `json:"kenya_aws_orgs,omitempty"`
}

// cloud ASNs mirrored from the world model.
const (
	awsASN = 16509
	gcpASN = 396982
)

// Ownership computes the §6.5 statistics from the analyzed corpus.
func Ownership(res *pipeline.Result) OwnershipStats {
	orgCountry := map[string]string{}
	awsDomains := map[string]bool{}
	gcpDomains := map[string]bool{}
	kenyaAWS := map[string]bool{}
	for _, cc := range res.CountryCodes() {
		for _, obs := range res.Countries[cc].Verdicts {
			if obs.Class != geoloc.NonLocal || !obs.IsTracker {
				continue
			}
			if obs.Org != "" {
				orgCountry[obs.Org] = obs.OrgCountry
			}
			switch obs.HostASN {
			case awsASN:
				if obs.Org != "Amazon" { // third parties riding AWS
					awsDomains[obs.Domain] = true
					if obs.DestCountry == "KE" && (cc == "UG" || cc == "RW") && obs.Org != "" {
						kenyaAWS[obs.Org] = true
					}
				}
			case gcpASN:
				if obs.Org != "Google" {
					gcpDomains[obs.Domain] = true
				}
			}
		}
	}
	out := OwnershipStats{
		Orgs:        len(orgCountry),
		HQSharePct:  map[string]float64{},
		AWSTrackers: len(awsDomains),
		GCPTrackers: len(gcpDomains),
	}
	counts := map[string]int{}
	for _, hq := range orgCountry {
		counts[hq]++
	}
	for hq, n := range counts {
		out.HQSharePct[hq] = stats.Percent(n, len(orgCountry))
	}
	for org := range kenyaAWS {
		out.KenyaAWSOrgs = append(out.KenyaAWSOrgs, org)
	}
	sort.Strings(out.KenyaAWSOrgs)
	return out
}

// FirstPartyStats summarizes §6.7.
type FirstPartyStats struct {
	SitesWithNonLocal int `json:"sites_with_non_local"`
	// SitesWithFirstParty counts sites embedding ≥1 first-party non-local
	// tracker (23 of 575 in the paper).
	SitesWithFirstParty int `json:"sites_with_first_party"`
	// ByOrg counts first-party sites per owning organization; about half
	// belong to Google (the ccTLD variants).
	ByOrg map[string]int `json:"by_org,omitempty"`
}

// FirstParty computes the §6.7 first-party statistics.
func FirstParty(res *pipeline.Result) FirstPartyStats {
	out := FirstPartyStats{ByOrg: map[string]int{}}
	for _, cc := range res.CountryCodes() {
		for _, s := range res.Countries[cc].Sites {
			if !s.LoadOK {
				continue
			}
			nl := s.NonLocalTrackers()
			if len(nl) == 0 {
				continue
			}
			out.SitesWithNonLocal++
			found, org := false, ""
			for _, d := range nl {
				if d.FirstParty {
					found = true
					org = d.Org
					break
				}
			}
			if found {
				out.SitesWithFirstParty++
				if org == "" {
					org = "(unattributed)"
				}
				out.ByOrg[org]++
			}
		}
	}
	return out
}
