package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultRegistryLoads(t *testing.T) {
	r := Default()
	if got := len(r.Codes()); got < 70 {
		t.Fatalf("expected at least 70 countries, got %d", got)
	}
}

func TestSourceCountriesPresent(t *testing.T) {
	r := Default()
	codes := SourceCountryCodes()
	if len(codes) != 23 {
		t.Fatalf("expected 23 source countries, got %d", len(codes))
	}
	seen := map[string]bool{}
	for _, code := range codes {
		if seen[code] {
			t.Errorf("duplicate source country %q", code)
		}
		seen[code] = true
		if _, ok := r.Country(code); !ok {
			t.Errorf("source country %q missing from registry", code)
		}
	}
}

func TestContinentTally(t *testing.T) {
	// The paper reports 4 African, 2 European, 2 North American, 2 Oceanian,
	// and 1 South American source country (with the remainder in Asia).
	r := Default()
	counts := map[Continent]int{}
	for _, code := range SourceCountryCodes() {
		c, ok := r.Country(code)
		if !ok {
			t.Fatalf("missing country %q", code)
		}
		counts[c.Continent]++
	}
	want := map[Continent]int{Africa: 4, Europe: 2, NorthAmerica: 2, Oceania: 2, SouthAmerica: 1, Asia: 12}
	for cont, n := range want {
		if counts[cont] != n {
			t.Errorf("continent %s: got %d source countries, want %d", cont, counts[cont], n)
		}
	}
}

func TestDistanceKnownPairs(t *testing.T) {
	r := Default()
	pair := func(a, b string) float64 {
		ca, ok := r.City(a)
		if !ok {
			t.Fatalf("missing city %q", a)
		}
		cb, ok := r.City(b)
		if !ok {
			t.Fatalf("missing city %q", b)
		}
		return DistanceKm(ca.Coord, cb.Coord)
	}
	cases := []struct {
		a, b     string
		min, max float64
	}{
		{"London, GB", "Paris, FR", 300, 400},
		{"New York, US", "London, GB", 5400, 5800},
		{"Auckland, NZ", "Sydney, AU", 2000, 2300},
		{"Kigali, RW", "Nairobi, KE", 700, 900},
		{"Bangkok, TH", "Singapore, SG", 1300, 1500},
		{"Karachi, PK", "Dubai, AE", 1100, 1300},
	}
	for _, tc := range cases {
		d := pair(tc.a, tc.b)
		if d < tc.min || d > tc.max {
			t.Errorf("distance %s -> %s = %.0f km, want in [%.0f, %.0f]", tc.a, tc.b, d, tc.min, tc.max)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	clampCoord := func(c Coord) Coord {
		lat := math.Mod(c.Lat, 90)
		lon := math.Mod(c.Lon, 180)
		if math.IsNaN(lat) {
			lat = 0
		}
		if math.IsNaN(lon) {
			lon = 0
		}
		return Coord{Lat: lat, Lon: lon}
	}
	symmetric := func(a, b Coord) bool {
		a, b = clampCoord(a), clampCoord(b)
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("distance not symmetric: %v", err)
	}
	nonNegBounded := func(a, b Coord) bool {
		a, b = clampCoord(a), clampCoord(b)
		d := DistanceKm(a, b)
		return d >= 0 && d <= 20038 // half of Earth's circumference
	}
	if err := quick.Check(nonNegBounded, nil); err != nil {
		t.Errorf("distance out of range: %v", err)
	}
	identity := func(a Coord) bool {
		a = clampCoord(a)
		return DistanceKm(a, a) < 1e-9
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("distance to self nonzero: %v", err)
	}
}

func TestSOLConstraint(t *testing.T) {
	if MinRTTMs(133) != 2.0 {
		t.Errorf("MinRTTMs(133) = %v, want 2", MinRTTMs(133))
	}
	if MaxDistanceKm(2) != 133 {
		t.Errorf("MaxDistanceKm(2) = %v, want 133", MaxDistanceKm(2))
	}
	if !ViolatesSOL(1000, 1) {
		t.Error("1000 km in 1 ms RTT should violate SOL")
	}
	if ViolatesSOL(100, 10) {
		t.Error("100 km in 10 ms RTT should not violate SOL")
	}
	if !ViolatesSOL(1, 0) {
		t.Error("nonzero distance with zero RTT should violate SOL")
	}
	if ViolatesSOL(0, 0) {
		t.Error("zero distance with zero RTT should not violate SOL")
	}
}

func TestSOLRoundTripProperty(t *testing.T) {
	// For any positive distance, the minimum RTT must never itself violate
	// the SOL constraint — the physical model is self-consistent.
	f := func(d float64) bool {
		d = math.Abs(math.Mod(d, 20000))
		return !ViolatesSOL(d, MinRTTMs(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistryValidation(t *testing.T) {
	_, err := NewRegistry([]Country{{Code: "XYZ", Name: "Bad"}})
	if err == nil {
		t.Error("expected error for 3-letter code")
	}
	_, err = NewRegistry([]Country{
		{Code: "AA", Name: "A"},
		{Code: "AA", Name: "A2"},
	})
	if err == nil {
		t.Error("expected error for duplicate code")
	}
	_, err = NewRegistry([]Country{
		{Code: "AA", Name: "A", Cities: []City{city("X", "BB", 0, 0)}},
	})
	if err == nil {
		t.Error("expected error for city in wrong country")
	}
}

func TestCityLookup(t *testing.T) {
	r := Default()
	c, ok := r.City("Nairobi, KE")
	if !ok {
		t.Fatal("Nairobi missing")
	}
	if c.Country != "KE" {
		t.Errorf("Nairobi country = %q, want KE", c.Country)
	}
	if _, ok := r.City("Atlantis, XX"); ok {
		t.Error("nonexistent city should not resolve")
	}
}

func TestCapital(t *testing.T) {
	r := Default()
	fr, _ := r.Country("FR")
	if fr.Capital().Name != "Paris" {
		t.Errorf("France capital = %q, want Paris", fr.Capital().Name)
	}
	var empty Country
	if empty.Capital().Name != "?" {
		t.Error("empty country capital should be placeholder")
	}
}

func TestContinentOf(t *testing.T) {
	r := Default()
	cases := map[string]Continent{
		"KE": Africa, "JP": Asia, "DE": Europe, "US": NorthAmerica,
		"NZ": Oceania, "AR": SouthAmerica,
	}
	for code, want := range cases {
		got, ok := r.ContinentOf(code)
		if !ok || got != want {
			t.Errorf("ContinentOf(%s) = %v (%v), want %v", code, got, ok, want)
		}
	}
	if _, ok := r.ContinentOf("XX"); ok {
		t.Error("unknown country should not have a continent")
	}
}
