package geo

import "sync"

// city is a terse constructor used by the embedded dataset.
func city(name, cc string, lat, lon float64) City {
	return City{Name: name, Country: cc, Coord: Coord{Lat: lat, Lon: lon}}
}

// DefaultCountries returns the embedded geographic dataset: the 23 source
// countries of the study plus every destination country observed hosting
// tracking servers (the paper reports destination traceroutes in more than
// 60 destination countries). Coordinates are approximate city centers.
func DefaultCountries() []Country {
	return []Country{
		// ---- The 23 measurement (source) countries ----
		{Code: "AZ", Name: "Azerbaijan", Continent: Asia, RadiusKm: 300,
			Cities: []City{city("Baku", "AZ", 40.41, 49.87)}},
		{Code: "DZ", Name: "Algeria", Continent: Africa, RadiusKm: 900,
			Cities: []City{city("Algiers", "DZ", 36.75, 3.06), city("Oran", "DZ", 35.70, -0.63)}},
		{Code: "EG", Name: "Egypt", Continent: Africa, RadiusKm: 600,
			Cities: []City{city("Cairo", "EG", 30.04, 31.24), city("Alexandria", "EG", 31.20, 29.92)}},
		{Code: "RW", Name: "Rwanda", Continent: Africa, RadiusKm: 120,
			Cities: []City{city("Kigali", "RW", -1.95, 30.06)}},
		{Code: "UG", Name: "Uganda", Continent: Africa, RadiusKm: 250,
			Cities: []City{city("Kampala", "UG", 0.35, 32.58)}},
		{Code: "AR", Name: "Argentina", Continent: SouthAmerica, RadiusKm: 1400,
			Cities: []City{city("Buenos Aires", "AR", -34.60, -58.38), city("Cordoba", "AR", -31.42, -64.18)}},
		{Code: "RU", Name: "Russia", Continent: Europe, RadiusKm: 3000,
			Cities: []City{city("Moscow", "RU", 55.76, 37.62), city("Saint Petersburg", "RU", 59.93, 30.34)}},
		{Code: "LK", Name: "Sri Lanka", Continent: Asia, RadiusKm: 200,
			Cities: []City{city("Colombo", "LK", 6.93, 79.86)}},
		{Code: "TH", Name: "Thailand", Continent: Asia, RadiusKm: 600,
			Cities: []City{city("Bangkok", "TH", 13.76, 100.50), city("Chiang Mai", "TH", 18.79, 98.98)}},
		{Code: "AE", Name: "United Arab Emirates", Continent: Asia, RadiusKm: 300,
			Cities: []City{city("Dubai", "AE", 25.20, 55.27), city("Abu Dhabi", "AE", 24.45, 54.38), city("Al Fujairah", "AE", 25.12, 56.33)}},
		{Code: "GB", Name: "United Kingdom", Continent: Europe, RadiusKm: 500,
			Cities: []City{city("London", "GB", 51.51, -0.13), city("Manchester", "GB", 53.48, -2.24)}},
		{Code: "AU", Name: "Australia", Continent: Oceania, RadiusKm: 2000,
			Cities: []City{city("Sydney", "AU", -33.87, 151.21), city("Melbourne", "AU", -37.81, 144.96), city("Perth", "AU", -31.95, 115.86)}},
		{Code: "CA", Name: "Canada", Continent: NorthAmerica, RadiusKm: 2500,
			Cities: []City{city("Toronto", "CA", 43.65, -79.38), city("Montreal", "CA", 45.50, -73.57), city("Vancouver", "CA", 49.28, -123.12)}},
		{Code: "IN", Name: "India", Continent: Asia, RadiusKm: 1500,
			Cities: []City{city("Mumbai", "IN", 19.08, 72.88), city("Delhi", "IN", 28.61, 77.21), city("Chennai", "IN", 13.08, 80.27)}},
		{Code: "JP", Name: "Japan", Continent: Asia, RadiusKm: 900,
			Cities: []City{city("Tokyo", "JP", 35.68, 139.69), city("Osaka", "JP", 34.69, 135.50)}},
		{Code: "JO", Name: "Jordan", Continent: Asia, RadiusKm: 200,
			Cities: []City{city("Amman", "JO", 31.95, 35.93)}},
		{Code: "NZ", Name: "New Zealand", Continent: Oceania, RadiusKm: 700,
			Cities: []City{city("Auckland", "NZ", -36.85, 174.76), city("Wellington", "NZ", -41.29, 174.78)}},
		{Code: "PK", Name: "Pakistan", Continent: Asia, RadiusKm: 700,
			Cities: []City{city("Karachi", "PK", 24.86, 67.01), city("Lahore", "PK", 31.55, 74.34), city("Islamabad", "PK", 33.68, 73.05)}},
		{Code: "QA", Name: "Qatar", Continent: Asia, RadiusKm: 80,
			Cities: []City{city("Doha", "QA", 25.29, 51.53)}},
		{Code: "SA", Name: "Saudi Arabia", Continent: Asia, RadiusKm: 900,
			Cities: []City{city("Riyadh", "SA", 24.71, 46.68), city("Jeddah", "SA", 21.49, 39.19)}},
		{Code: "TW", Name: "Taiwan", Continent: Asia, RadiusKm: 200,
			Cities: []City{city("Taipei", "TW", 25.03, 121.57)}},
		{Code: "US", Name: "United States", Continent: NorthAmerica, RadiusKm: 2200,
			Cities: []City{city("Ashburn", "US", 39.04, -77.49), city("New York", "US", 40.71, -74.01), city("San Francisco", "US", 37.77, -122.42), city("Dallas", "US", 32.78, -96.80)}},
		{Code: "LB", Name: "Lebanon", Continent: Asia, RadiusKm: 90,
			Cities: []City{city("Beirut", "LB", 33.89, 35.50)}},

		// ---- Destination-only countries (tracker hosting, Atlas probes) ----
		{Code: "FR", Name: "France", Continent: Europe, RadiusKm: 500,
			Cities: []City{city("Paris", "FR", 48.86, 2.35), city("Marseille", "FR", 43.30, 5.37)}},
		{Code: "DE", Name: "Germany", Continent: Europe, RadiusKm: 400,
			Cities: []City{city("Frankfurt", "DE", 50.11, 8.68), city("Berlin", "DE", 52.52, 13.41)}},
		{Code: "KE", Name: "Kenya", Continent: Africa, RadiusKm: 400,
			Cities: []City{city("Nairobi", "KE", -1.29, 36.82), city("Mombasa", "KE", -4.04, 39.66)}},
		{Code: "MY", Name: "Malaysia", Continent: Asia, RadiusKm: 500,
			Cities: []City{city("Kuala Lumpur", "MY", 3.14, 101.69)}},
		{Code: "SG", Name: "Singapore", Continent: Asia, RadiusKm: 30,
			Cities: []City{city("Singapore", "SG", 1.35, 103.82)}},
		{Code: "HK", Name: "Hong Kong", Continent: Asia, RadiusKm: 40,
			Cities: []City{city("Hong Kong", "HK", 22.32, 114.17)}},
		{Code: "OM", Name: "Oman", Continent: Asia, RadiusKm: 400,
			Cities: []City{city("Muscat", "OM", 23.59, 58.38)}},
		{Code: "BG", Name: "Bulgaria", Continent: Europe, RadiusKm: 250,
			Cities: []City{city("Sofia", "BG", 42.70, 23.32)}},
		{Code: "BR", Name: "Brazil", Continent: SouthAmerica, RadiusKm: 1700,
			Cities: []City{city("Sao Paulo", "BR", -23.55, -46.63), city("Rio de Janeiro", "BR", -22.91, -43.17)}},
		{Code: "FI", Name: "Finland", Continent: Europe, RadiusKm: 500,
			Cities: []City{city("Helsinki", "FI", 60.17, 24.94), city("Hamina", "FI", 60.57, 27.20)}},
		{Code: "NL", Name: "Netherlands", Continent: Europe, RadiusKm: 150,
			Cities: []City{city("Amsterdam", "NL", 52.37, 4.89)}},
		{Code: "IL", Name: "Israel", Continent: Asia, RadiusKm: 200,
			Cities: []City{city("Tel Aviv", "IL", 32.09, 34.78)}},
		{Code: "IT", Name: "Italy", Continent: Europe, RadiusKm: 500,
			Cities: []City{city("Milan", "IT", 45.46, 9.19), city("Rome", "IT", 41.90, 12.50)}},
		{Code: "IE", Name: "Ireland", Continent: Europe, RadiusKm: 200,
			Cities: []City{city("Dublin", "IE", 53.35, -6.26)}},
		{Code: "BE", Name: "Belgium", Continent: Europe, RadiusKm: 120,
			Cities: []City{city("Brussels", "BE", 50.85, 4.35), city("Saint-Ghislain", "BE", 50.45, 3.82)}},
		{Code: "GH", Name: "Ghana", Continent: Africa, RadiusKm: 300,
			Cities: []City{city("Accra", "GH", 5.60, -0.19)}},
		{Code: "TR", Name: "Turkey", Continent: Asia, RadiusKm: 700,
			Cities: []City{city("Istanbul", "TR", 41.01, 28.98)}},
		{Code: "CH", Name: "Switzerland", Continent: Europe, RadiusKm: 150,
			Cities: []City{city("Zurich", "CH", 47.38, 8.54)}},
		{Code: "ES", Name: "Spain", Continent: Europe, RadiusKm: 500,
			Cities: []City{city("Madrid", "ES", 40.42, -3.70)}},
		{Code: "PL", Name: "Poland", Continent: Europe, RadiusKm: 350,
			Cities: []City{city("Warsaw", "PL", 52.23, 21.01)}},
		{Code: "SE", Name: "Sweden", Continent: Europe, RadiusKm: 700,
			Cities: []City{city("Stockholm", "SE", 59.33, 18.07)}},
		{Code: "NO", Name: "Norway", Continent: Europe, RadiusKm: 700,
			Cities: []City{city("Oslo", "NO", 59.91, 10.75)}},
		{Code: "DK", Name: "Denmark", Continent: Europe, RadiusKm: 150,
			Cities: []City{city("Copenhagen", "DK", 55.68, 12.57)}},
		{Code: "CZ", Name: "Czechia", Continent: Europe, RadiusKm: 200,
			Cities: []City{city("Prague", "CZ", 50.08, 14.44)}},
		{Code: "AT", Name: "Austria", Continent: Europe, RadiusKm: 250,
			Cities: []City{city("Vienna", "AT", 48.21, 16.37)}},
		{Code: "PT", Name: "Portugal", Continent: Europe, RadiusKm: 300,
			Cities: []City{city("Lisbon", "PT", 38.72, -9.14)}},
		{Code: "ZA", Name: "South Africa", Continent: Africa, RadiusKm: 700,
			Cities: []City{city("Johannesburg", "ZA", -26.20, 28.05), city("Cape Town", "ZA", -33.92, 18.42)}},
		{Code: "NG", Name: "Nigeria", Continent: Africa, RadiusKm: 500,
			Cities: []City{city("Lagos", "NG", 6.52, 3.38)}},
		{Code: "MA", Name: "Morocco", Continent: Africa, RadiusKm: 400,
			Cities: []City{city("Casablanca", "MA", 33.57, -7.59)}},
		{Code: "ID", Name: "Indonesia", Continent: Asia, RadiusKm: 1500,
			Cities: []City{city("Jakarta", "ID", -6.21, 106.85)}},
		{Code: "VN", Name: "Vietnam", Continent: Asia, RadiusKm: 600,
			Cities: []City{city("Ho Chi Minh City", "VN", 10.82, 106.63)}},
		{Code: "PH", Name: "Philippines", Continent: Asia, RadiusKm: 600,
			Cities: []City{city("Manila", "PH", 14.60, 120.98)}},
		{Code: "KR", Name: "South Korea", Continent: Asia, RadiusKm: 250,
			Cities: []City{city("Seoul", "KR", 37.57, 126.98)}},
		{Code: "CN", Name: "China", Continent: Asia, RadiusKm: 2000,
			Cities: []City{city("Shanghai", "CN", 31.23, 121.47)}},
		{Code: "MX", Name: "Mexico", Continent: NorthAmerica, RadiusKm: 900,
			Cities: []City{city("Mexico City", "MX", 19.43, -99.13), city("Queretaro", "MX", 20.59, -100.39)}},
		{Code: "CL", Name: "Chile", Continent: SouthAmerica, RadiusKm: 1500,
			Cities: []City{city("Santiago", "CL", -33.45, -70.67)}},
		{Code: "CO", Name: "Colombia", Continent: SouthAmerica, RadiusKm: 600,
			Cities: []City{city("Bogota", "CO", 4.71, -74.07)}},
		{Code: "UY", Name: "Uruguay", Continent: SouthAmerica, RadiusKm: 250,
			Cities: []City{city("Montevideo", "UY", -34.90, -56.16)}},
		{Code: "PE", Name: "Peru", Continent: SouthAmerica, RadiusKm: 700,
			Cities: []City{city("Lima", "PE", -12.05, -77.04)}},
		{Code: "GR", Name: "Greece", Continent: Europe, RadiusKm: 300,
			Cities: []City{city("Athens", "GR", 37.98, 23.73)}},
		{Code: "HU", Name: "Hungary", Continent: Europe, RadiusKm: 200,
			Cities: []City{city("Budapest", "HU", 47.50, 19.04)}},
		{Code: "RO", Name: "Romania", Continent: Europe, RadiusKm: 300,
			Cities: []City{city("Bucharest", "RO", 44.43, 26.10)}},
		{Code: "UA", Name: "Ukraine", Continent: Europe, RadiusKm: 500,
			Cities: []City{city("Kyiv", "UA", 50.45, 30.52)}},
		{Code: "KZ", Name: "Kazakhstan", Continent: Asia, RadiusKm: 1200,
			Cities: []City{city("Almaty", "KZ", 43.24, 76.95)}},
		{Code: "KW", Name: "Kuwait", Continent: Asia, RadiusKm: 100,
			Cities: []City{city("Kuwait City", "KW", 29.38, 47.99)}},
		{Code: "BH", Name: "Bahrain", Continent: Asia, RadiusKm: 30,
			Cities: []City{city("Manama", "BH", 26.23, 50.59)}},
		{Code: "CY", Name: "Cyprus", Continent: Asia, RadiusKm: 100,
			Cities: []City{city("Nicosia", "CY", 35.19, 33.38)}},
		{Code: "LU", Name: "Luxembourg", Continent: Europe, RadiusKm: 40,
			Cities: []City{city("Luxembourg", "LU", 49.61, 6.13)}},
		{Code: "EE", Name: "Estonia", Continent: Europe, RadiusKm: 180,
			Cities: []City{city("Tallinn", "EE", 59.44, 24.75)}},
		{Code: "BD", Name: "Bangladesh", Continent: Asia, RadiusKm: 300,
			Cities: []City{city("Dhaka", "BD", 23.81, 90.41)}},
		{Code: "NP", Name: "Nepal", Continent: Asia, RadiusKm: 350,
			Cities: []City{city("Kathmandu", "NP", 27.72, 85.32)}},
		{Code: "ET", Name: "Ethiopia", Continent: Africa, RadiusKm: 500,
			Cities: []City{city("Addis Ababa", "ET", 9.03, 38.74)}},
		{Code: "TZ", Name: "Tanzania", Continent: Africa, RadiusKm: 500,
			Cities: []City{city("Dar es Salaam", "TZ", -6.79, 39.21)}},
		{Code: "SN", Name: "Senegal", Continent: Africa, RadiusKm: 300,
			Cities: []City{city("Dakar", "SN", 14.72, -17.47)}},
		{Code: "TN", Name: "Tunisia", Continent: Africa, RadiusKm: 300,
			Cities: []City{city("Tunis", "TN", 36.81, 10.18)}},
		{Code: "FJ", Name: "Fiji", Continent: Oceania, RadiusKm: 200,
			Cities: []City{city("Suva", "FJ", -18.14, 178.44)}},
	}
}

// SourceCountryCodes lists the 23 countries where volunteers ran Gamma,
// in the x-axis order used by the paper's Table 1 grouping.
func SourceCountryCodes() []string {
	return []string{
		"AZ", "DZ", "EG", "RW", "UG", // CS + PA
		"AR", "RU", "LK", "TH", "AE", "GB", // AC
		"AU", "CA", "IN", "JP", "JO", "NZ", "PK", "QA", "SA", "TW", "US", // TA
		"LB", // NR
	}
}

var defaultRegistry = sync.OnceValue(func() *Registry {
	r, err := NewRegistry(DefaultCountries())
	if err != nil {
		panic("geo: embedded dataset invalid: " + err.Error())
	}
	return r
})

// Default returns the registry built from the embedded dataset. The result
// is shared; registries are immutable.
func Default() *Registry { return defaultRegistry() }
