// Package geo models the physical geography that underpins all latency-based
// geolocation in the study: countries with ISO 3166-1 alpha-2 codes,
// continents, cities with coordinates, great-circle distances, and the
// speed-of-light-in-fiber physical constraint (§4.1 of the paper).
package geo

import (
	"fmt"
	"math"
	"sort"
)

// Continent identifies one of the six inhabited continents.
type Continent string

// The six inhabited continents used for Figure 6 aggregation.
const (
	Africa       Continent = "Africa"
	Asia         Continent = "Asia"
	Europe       Continent = "Europe"
	NorthAmerica Continent = "North America"
	Oceania      Continent = "Oceania"
	SouthAmerica Continent = "South America"
)

// Continents lists all continents in a stable order.
func Continents() []Continent {
	return []Continent{Africa, Asia, Europe, NorthAmerica, Oceania, SouthAmerica}
}

// Coord is a WGS84 latitude/longitude pair in decimal degrees.
type Coord struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// City is a populated place that can host volunteers, probes, or servers.
type City struct {
	Name    string `json:"name"`
	Country string `json:"country"` // ISO 3166-1 alpha-2
	Coord   Coord  `json:"coord"`
}

// ID returns the canonical "City, CC" identifier used throughout the suite.
func (c City) ID() string { return c.Name + ", " + c.Country }

// Country is a nation participating in the study as a measurement source,
// a tracker-hosting destination, or both.
type Country struct {
	Code      string    `json:"code"` // ISO 3166-1 alpha-2
	Name      string    `json:"name"`
	Continent Continent `json:"continent"`
	Cities    []City    `json:"cities"`
	// RadiusKm approximates the country's geographic extent; used by the
	// destination-based constraint to decide whether an in-country RTT is
	// plausible.
	RadiusKm float64 `json:"radius_km"`
}

// Capital returns the country's first (primary) city.
func (c Country) Capital() City {
	if len(c.Cities) == 0 {
		return City{Name: "?", Country: c.Code}
	}
	return c.Cities[0]
}

// Registry is an immutable set of countries and their cities.
type Registry struct {
	byCode map[string]*Country
	byCity map[string]*City
	codes  []string
}

// NewRegistry builds a registry from a country list, validating uniqueness.
func NewRegistry(countries []Country) (*Registry, error) {
	r := &Registry{
		byCode: make(map[string]*Country, len(countries)),
		byCity: make(map[string]*City),
	}
	for i := range countries {
		c := &countries[i]
		if len(c.Code) != 2 {
			return nil, fmt.Errorf("geo: country %q has invalid code %q", c.Name, c.Code)
		}
		if _, dup := r.byCode[c.Code]; dup {
			return nil, fmt.Errorf("geo: duplicate country code %q", c.Code)
		}
		r.byCode[c.Code] = c
		r.codes = append(r.codes, c.Code)
		for j := range c.Cities {
			city := &c.Cities[j]
			if city.Country == "" {
				city.Country = c.Code
			}
			if city.Country != c.Code {
				return nil, fmt.Errorf("geo: city %q claims country %q inside %q", city.Name, city.Country, c.Code)
			}
			id := city.ID()
			if _, dup := r.byCity[id]; dup {
				return nil, fmt.Errorf("geo: duplicate city %q", id)
			}
			r.byCity[id] = city
		}
	}
	sort.Strings(r.codes)
	return r, nil
}

// Country returns the country with the given ISO code.
func (r *Registry) Country(code string) (Country, bool) {
	c, ok := r.byCode[code]
	if !ok {
		return Country{}, false
	}
	return *c, true
}

// City returns the city with the given "Name, CC" identifier.
func (r *Registry) City(id string) (City, bool) {
	c, ok := r.byCity[id]
	if !ok {
		return City{}, false
	}
	return *c, true
}

// Codes returns all country codes in sorted order.
func (r *Registry) Codes() []string {
	out := make([]string, len(r.codes))
	copy(out, r.codes)
	return out
}

// Countries returns all countries sorted by code.
func (r *Registry) Countries() []Country {
	out := make([]Country, 0, len(r.codes))
	for _, code := range r.codes {
		out = append(out, *r.byCode[code])
	}
	return out
}

// ContinentOf reports the continent for a country code.
func (r *Registry) ContinentOf(code string) (Continent, bool) {
	c, ok := r.byCode[code]
	if !ok {
		return "", false
	}
	return c.Continent, true
}

const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle (haversine) distance between two
// coordinates in kilometers.
func DistanceKm(a, b Coord) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// SOLKmPerMs is the paper's speed-of-light physical constraint: data in
// fiber-optic cable cannot cover more than 133 km per millisecond of
// one-way delay (§4.1, citing Katz-Bassett et al.).
const SOLKmPerMs = 133.0

// MinRTTMs returns the smallest physically possible round-trip time, in
// milliseconds, between two points separated by distKm kilometers.
func MinRTTMs(distKm float64) float64 { return 2 * distKm / SOLKmPerMs }

// MaxDistanceKm returns the farthest a responding host can possibly be,
// given an observed round-trip time in milliseconds.
func MaxDistanceKm(rttMs float64) float64 { return rttMs * SOLKmPerMs / 2 }

// ViolatesSOL reports whether an observed RTT is physically impossible for
// the claimed distance: the implied one-way speed would exceed 133 km/ms.
// A relative epsilon absorbs floating-point round-off so that a distance
// exactly at the physical limit never flips to "violation" by one ULP.
func ViolatesSOL(distKm, rttMs float64) bool {
	if rttMs <= 0 {
		return distKm > 0
	}
	return distKm > MaxDistanceKm(rttMs)*(1+1e-9)
}
