// Package atlas models a RIPE-Atlas-style open probe mesh: thousands of
// small probes hosted in volunteers' and operators' networks, dense in the
// Global North and sparse in the Global South — the coverage asymmetry that
// motivates Gamma in the first place (§2.2–2.3). The destination-based
// geolocation constraint (§4.1.2) launches traceroutes from these probes,
// and in countries where the volunteer's own traceroutes failed (Australia,
// India, Qatar, Jordan) or were opted out (Egypt), source traceroutes are
// re-run from the nearest probe — which for Qatar sits in Saudi Arabia and
// for Jordan in Israel, exactly as the paper reports.
package atlas

import (
	"fmt"
	"math"
	"net/netip"
	"sort"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/netsim"
	"github.com/gamma-suite/gamma/internal/rng"
)

// Probe is one mesh probe, wired to a netsim vantage.
type Probe struct {
	ID      int      `json:"id"`
	City    geo.City `json:"city"`
	Country string   `json:"country"`
	ASN     uint32   `json:"asn"`
	// VantageID is the probe's identity in the data-plane simulator.
	VantageID string `json:"vantage_id"`
}

// MeshConfig controls probe density.
type MeshConfig struct {
	Seed uint64
	// PerCountry bounds the probe count per country by continent,
	// reproducing the Global North / Global South density gap.
	PerCountry map[geo.Continent][2]int
	// Exclude lists countries with zero probes regardless of continent.
	Exclude map[string]bool
	// BaseASN numbers the host ASes created for probes.
	BaseASN uint32
}

// DefaultMeshConfig mirrors the real mesh's skew: dense in Europe and North
// America, thin in Asia and Oceania, nearly absent in parts of Africa and
// the Gulf (no probes at all in Qatar or Jordan).
func DefaultMeshConfig(seed uint64) MeshConfig {
	return MeshConfig{
		Seed: seed,
		PerCountry: map[geo.Continent][2]int{
			geo.Europe:       {8, 15},
			geo.NorthAmerica: {6, 12},
			geo.Asia:         {1, 5},
			geo.SouthAmerica: {1, 4},
			geo.Oceania:      {2, 5},
			geo.Africa:       {1, 2},
		},
		Exclude: map[string]bool{"QA": true, "JO": true},
		BaseASN: 200000,
	}
}

// Mesh is the deployed probe network.
type Mesh struct {
	net       *netsim.Network
	probes    []Probe
	byCountry map[string][]int // country -> indexes into probes
}

// BuildMesh deploys probes into the network per the configuration.
func BuildMesh(n *netsim.Network, reg *geo.Registry, cfg MeshConfig) (*Mesh, error) {
	m := &Mesh{net: n, byCountry: make(map[string][]int)}
	nextASN := cfg.BaseASN
	id := 0
	for _, country := range reg.Countries() {
		if cfg.Exclude[country.Code] {
			continue
		}
		bounds, ok := cfg.PerCountry[country.Continent]
		if !ok {
			continue
		}
		r := rng.New(cfg.Seed, "atlas", country.Code)
		count := bounds[0]
		if bounds[1] > bounds[0] {
			count += r.IntN(bounds[1] - bounds[0] + 1)
		}
		if count == 0 || len(country.Cities) == 0 {
			continue
		}
		asn := nextASN
		nextASN++
		if err := n.AddAS(netsim.AS{
			Number: asn, Name: fmt.Sprintf("PROBE-HOST-%s", country.Code),
			Org: "Probe Host ISP " + country.Name, Country: country.Code,
		}); err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			id++
			c := country.Cities[r.IntN(len(country.Cities))]
			vid := fmt.Sprintf("atlas-%d", id)
			v := netsim.Vantage{
				ID:            vid,
				City:          c,
				ASN:           asn,
				AccessDelayMs: rng.Float64InRange(r, 1.5, 8),
			}
			if _, err := n.AddVantage(v); err != nil {
				return nil, err
			}
			m.probes = append(m.probes, Probe{
				ID: id, City: c, Country: country.Code, ASN: asn, VantageID: vid,
			})
			m.byCountry[country.Code] = append(m.byCountry[country.Code], len(m.probes)-1)
		}
	}
	return m, nil
}

// Len returns the number of deployed probes.
func (m *Mesh) Len() int { return len(m.probes) }

// Probes returns all probes (copy).
func (m *Mesh) Probes() []Probe {
	out := make([]Probe, len(m.probes))
	copy(out, m.probes)
	return out
}

// Countries returns the sorted list of countries hosting at least one probe.
func (m *Mesh) Countries() []string {
	out := make([]string, 0, len(m.byCountry))
	for cc := range m.byCountry {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// ProbeInCountry selects a probe in the given country, preferring the one
// closest to near (same city when available, per §4.1.2). ok is false when
// the country has no probes at all.
func (m *Mesh) ProbeInCountry(cc string, near geo.Coord) (Probe, bool) {
	idxs := m.byCountry[cc]
	if len(idxs) == 0 {
		return Probe{}, false
	}
	best, bestDist := -1, math.Inf(1)
	for _, i := range idxs {
		d := geo.DistanceKm(m.probes[i].City.Coord, near)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return m.probes[best], true
}

// NearestProbe selects the probe geographically closest to the coordinate,
// regardless of country — the fallback the paper used for Qatar (probe in
// Saudi Arabia) and Jordan (probe in Israel). preferASN breaks near-ties in
// favour of a probe on the given network when one exists within 1.25x of
// the best distance.
func (m *Mesh) NearestProbe(near geo.Coord, preferASN uint32) (Probe, bool) {
	if len(m.probes) == 0 {
		return Probe{}, false
	}
	best, bestDist := -1, math.Inf(1)
	for i := range m.probes {
		d := geo.DistanceKm(m.probes[i].City.Coord, near)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	if preferASN != 0 {
		for i := range m.probes {
			if m.probes[i].ASN != preferASN {
				continue
			}
			if geo.DistanceKm(m.probes[i].City.Coord, near) <= bestDist*1.25+1 {
				return m.probes[i], true
			}
		}
	}
	return m.probes[best], true
}

// Traceroute launches a traceroute from the probe through the data plane.
func (m *Mesh) Traceroute(p Probe, dst netip.Addr) (netsim.TraceResult, error) {
	return m.net.Traceroute(p.VantageID, dst)
}
