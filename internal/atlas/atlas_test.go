package atlas

import (
	"testing"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/netsim"
)

func buildMesh(t *testing.T) (*Mesh, *netsim.Network, *geo.Registry) {
	t.Helper()
	n := netsim.New(netsim.DefaultConfig(55))
	reg := geo.Default()
	m, err := BuildMesh(n, reg, DefaultMeshConfig(55))
	if err != nil {
		t.Fatal(err)
	}
	return m, n, reg
}

func TestMeshDensitySkew(t *testing.T) {
	m, _, reg := buildMesh(t)
	if m.Len() < 100 {
		t.Fatalf("mesh too small: %d probes", m.Len())
	}
	perContinent := map[geo.Continent][]int{}
	counts := map[string]int{}
	for _, p := range m.Probes() {
		counts[p.Country]++
	}
	for cc, n := range counts {
		cont, _ := reg.ContinentOf(cc)
		perContinent[cont] = append(perContinent[cont], n)
	}
	avg := func(xs []int) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0
		for _, x := range xs {
			s += x
		}
		return float64(s) / float64(len(xs))
	}
	if avg(perContinent[geo.Europe]) <= avg(perContinent[geo.Africa])*2 {
		t.Errorf("Europe density (%.1f) should far exceed Africa (%.1f)",
			avg(perContinent[geo.Europe]), avg(perContinent[geo.Africa]))
	}
}

func TestExcludedCountriesHaveNoProbes(t *testing.T) {
	m, _, reg := buildMesh(t)
	for _, cc := range []string{"QA", "JO"} {
		capital, _ := reg.Country(cc)
		if _, ok := m.ProbeInCountry(cc, capital.Capital().Coord); ok {
			t.Errorf("country %s must have no probes", cc)
		}
	}
}

func TestNearestProbeFallback(t *testing.T) {
	m, _, reg := buildMesh(t)
	// Qatar has no probe; the nearest is expected in the Gulf region
	// (Saudi Arabia, Bahrain, UAE or Kuwait).
	doha, _ := reg.City("Doha, QA")
	p, ok := m.NearestProbe(doha.Coord, 0)
	if !ok {
		t.Fatal("nearest probe lookup failed")
	}
	if p.Country == "QA" {
		t.Fatal("no probe should exist in Qatar")
	}
	d := geo.DistanceKm(p.City.Coord, doha.Coord)
	if d > 2500 {
		t.Errorf("nearest probe to Doha is %s at %.0f km — too far", p.City.ID(), d)
	}
}

func TestProbeInCountryPrefersNearCity(t *testing.T) {
	m, _, reg := buildMesh(t)
	// The US has several cities; the chosen probe must be the closest one.
	sf, _ := reg.City("San Francisco, US")
	p, ok := m.ProbeInCountry("US", sf.Coord)
	if !ok {
		t.Fatal("US must have probes")
	}
	for _, q := range m.Probes() {
		if q.Country != "US" {
			continue
		}
		if geo.DistanceKm(q.City.Coord, sf.Coord) < geo.DistanceKm(p.City.Coord, sf.Coord)-1e-9 {
			t.Fatalf("probe %d in %s is closer to SF than selected %s", q.ID, q.City.ID(), p.City.ID())
		}
	}
}

func TestProbeTraceroute(t *testing.T) {
	m, n, reg := buildMesh(t)
	_ = n.AddAS(netsim.AS{Number: 999, Name: "dst", Org: "dst", Country: "DE"})
	fra, _ := reg.City("Frankfurt, DE")
	h, err := n.AddHost(netsim.Host{City: fra, ASN: 999, Responsive: true})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := m.ProbeInCountry("DE", fra.Coord)
	if !ok {
		t.Fatal("Germany must have probes")
	}
	reached := false
	for i := 0; i < 5 && !reached; i++ {
		res, err := m.Traceroute(p, h.Addr)
		if err != nil {
			t.Fatal(err)
		}
		reached = res.Reached
		if res.Reached {
			// In-country trace: RTT must be small (same city here).
			if res.LastHopRTT() > 30 {
				t.Errorf("same-city probe trace RTT %.2f ms is too large", res.LastHopRTT())
			}
		}
	}
	if !reached {
		t.Error("probe traceroute to responsive in-country host never reached")
	}
}

func TestMeshDeterministic(t *testing.T) {
	m1, _, _ := buildMesh(t)
	m2, _, _ := buildMesh(t)
	if m1.Len() != m2.Len() {
		t.Fatal("mesh must be deterministic")
	}
	p1, p2 := m1.Probes(), m2.Probes()
	for i := range p1 {
		if p1[i].City.ID() != p2[i].City.ID() || p1[i].Country != p2[i].Country {
			t.Fatal("probe placement must be deterministic")
		}
	}
}

func TestCountriesSorted(t *testing.T) {
	m, _, _ := buildMesh(t)
	cs := m.Countries()
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatal("Countries() must be sorted and unique")
		}
	}
	if len(cs) < 40 {
		t.Errorf("expected probes in at least 40 countries, got %d", len(cs))
	}
}

func TestNearestProbePreferASN(t *testing.T) {
	m, _, reg := buildMesh(t)
	ldn, _ := reg.City("London, GB")
	base, ok := m.NearestProbe(ldn.Coord, 0)
	if !ok {
		t.Fatal("no probes at all")
	}
	// Preferring the ASN of the nearest probe must return a probe on it.
	p, ok := m.NearestProbe(ldn.Coord, base.ASN)
	if !ok || p.ASN != base.ASN {
		t.Errorf("ASN preference not honoured: got ASN %d, want %d", p.ASN, base.ASN)
	}
}
