package cbg

import (
	"testing"
	"testing/quick"

	"github.com/gamma-suite/gamma/internal/geo"
)

// TestTruthInsideEstimateProperty: for any true location and any probe set
// whose RTTs are physically consistent (at or above the SOL floor with
// realistic inflation), the system is feasible and the true location lies
// within the estimate's uncertainty region (plus grid resolution slack).
func TestTruthInsideEstimateProperty(t *testing.T) {
	var cities []geo.City
	for _, c := range geo.Default().Countries() {
		cities = append(cities, c.Cities...)
	}
	f := func(truthIdx uint16, probeSeed uint32, probeCount uint8) bool {
		truth := cities[int(truthIdx)%len(cities)]
		n := int(probeCount%4) + 2
		var ms []Measurement
		for i := 0; i < n; i++ {
			probe := cities[int(probeSeed>>uint(i*5))%len(cities)]
			d := geo.DistanceKm(probe.Coord, truth.Coord)
			// Inflation between 1.6 and 2.4 depending on the seed bits.
			infl := 1.6 + float64((probeSeed>>uint(i))%9)/10
			ms = append(ms, Measurement{Probe: probe.Coord, RTTMs: geo.MinRTTMs(d)*infl + 1})
		}
		est := Locate(ms, DefaultConfig())
		if !est.Feasible {
			return false
		}
		// Grid coarseness: allow ~3 cells of slack beyond the radius.
		slack := est.RadiusKm*0.15 + 600
		return geo.DistanceKm(est.Center, truth.Coord) <= est.RadiusKm+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
