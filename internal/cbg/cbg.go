// Package cbg implements constraint-based geolocation (CBG-style
// multilateration, after Gueye et al. and the delay/topology approach of
// Katz-Bassett et al. that the paper's SOL constraint cites): each
// round-trip time from a probe with a known location bounds the target
// inside a disc whose radius is the speed-of-light distance for that
// delay; the target must sit in the intersection of all discs.
//
// The paper's framework uses single-probe constraints to *validate*
// database claims; this package closes the loop and *estimates* a server's
// position outright from multiple vantage points — the granular technical
// audit §7 recommends to policymakers. It is exercised by the cbglocate
// example and the geolocation-ablation experiment.
package cbg

import (
	"math"

	"github.com/gamma-suite/gamma/internal/geo"
)

// Measurement is one probe's delay observation of the target.
type Measurement struct {
	Probe geo.Coord `json:"probe"`
	// RTTMs is the cleaned round-trip time (local-network delay already
	// subtracted, as in §4.1.1).
	RTTMs float64 `json:"rtt_ms"`
}

// radiusKm returns the measurement's constraint radius: the farthest the
// target can be from the probe.
func (m Measurement) radiusKm() float64 { return geo.MaxDistanceKm(m.RTTMs) }

// Estimate is the multilateration result.
type Estimate struct {
	// Feasible reports whether the constraint discs intersect at all. An
	// infeasible system means at least one measurement (or assumed probe
	// location) is wrong.
	Feasible bool `json:"feasible"`
	// Center is the centroid of the feasible region.
	Center geo.Coord `json:"center"`
	// RadiusKm bounds the feasible region around Center (uncertainty).
	RadiusKm float64 `json:"radius_km"`
	// Constraints is the number of measurements used.
	Constraints int `json:"constraints"`
}

// Config tunes the grid search.
type Config struct {
	// GridSteps is the resolution per axis of the feasibility search.
	GridSteps int
	// SlackKm loosens every disc to absorb residual queueing delay.
	SlackKm float64
}

// DefaultConfig returns a resolution adequate for country-level decisions.
func DefaultConfig() Config { return Config{GridSteps: 72, SlackKm: 50} }

// Locate runs the multilateration. With no measurements the result is
// infeasible.
func Locate(ms []Measurement, cfg Config) Estimate {
	if cfg.GridSteps <= 0 {
		cfg = DefaultConfig()
	}
	out := Estimate{Constraints: len(ms)}
	if len(ms) == 0 {
		return out
	}

	// Search inside the bounding box of the tightest disc: the target must
	// lie within it if the system is feasible.
	tight := 0
	for i, m := range ms {
		if m.radiusKm() < ms[tight].radiusKm() {
			tight = i
		}
	}
	center := ms[tight].Probe
	r := ms[tight].radiusKm() + cfg.SlackKm
	// Convert the radius to degree extents (longitude shrinks with
	// latitude; guard the poles).
	dLat := r / 111.0
	cosLat := math.Cos(center.Lat * math.Pi / 180)
	if cosLat < 0.1 {
		cosLat = 0.1
	}
	dLon := r / (111.0 * cosLat)

	var sumLat, sumLon float64
	var feasiblePts []geo.Coord
	steps := cfg.GridSteps
	for i := 0; i <= steps; i++ {
		for j := 0; j <= steps; j++ {
			pt := geo.Coord{
				Lat: center.Lat - dLat + 2*dLat*float64(i)/float64(steps),
				Lon: center.Lon - dLon + 2*dLon*float64(j)/float64(steps),
			}
			if pt.Lat > 90 || pt.Lat < -90 {
				continue
			}
			ok := true
			for _, m := range ms {
				if geo.DistanceKm(m.Probe, pt) > m.radiusKm()+cfg.SlackKm {
					ok = false
					break
				}
			}
			if ok {
				feasiblePts = append(feasiblePts, pt)
				sumLat += pt.Lat
				sumLon += pt.Lon
			}
		}
	}
	if len(feasiblePts) == 0 {
		return out
	}
	out.Feasible = true
	out.Center = geo.Coord{
		Lat: sumLat / float64(len(feasiblePts)),
		Lon: sumLon / float64(len(feasiblePts)),
	}
	for _, pt := range feasiblePts {
		if d := geo.DistanceKm(out.Center, pt); d > out.RadiusKm {
			out.RadiusKm = d
		}
	}
	return out
}

// NearestCity maps an estimate onto the closest known city, returning the
// city and its distance from the estimate's center.
func NearestCity(e Estimate, reg *geo.Registry) (geo.City, float64, bool) {
	if !e.Feasible {
		return geo.City{}, 0, false
	}
	best := geo.City{}
	bestDist := math.Inf(1)
	for _, country := range reg.Countries() {
		for _, c := range country.Cities {
			if d := geo.DistanceKm(c.Coord, e.Center); d < bestDist {
				best, bestDist = c, d
			}
		}
	}
	if math.IsInf(bestDist, 1) {
		return geo.City{}, 0, false
	}
	return best, bestDist, true
}

// CountryCandidates lists the countries that have at least one city within
// the estimate's uncertainty region, nearest first — the set of plausible
// hosting jurisdictions, which is what a data-sovereignty audit needs.
func CountryCandidates(e Estimate, reg *geo.Registry) []string {
	if !e.Feasible {
		return nil
	}
	type cand struct {
		cc   string
		dist float64
	}
	var cands []cand
	for _, country := range reg.Countries() {
		best := math.Inf(1)
		for _, c := range country.Cities {
			if d := geo.DistanceKm(c.Coord, e.Center); d < best {
				best = d
			}
		}
		if best <= e.RadiusKm+100 {
			cands = append(cands, cand{country.Code, best})
		}
	}
	// Insertion sort by distance: candidate lists are tiny.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].dist < cands[j-1].dist; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.cc
	}
	return out
}
