package cbg

import (
	"testing"

	"github.com/gamma-suite/gamma/internal/geo"
)

func coord(t *testing.T, cityID string) geo.Coord {
	t.Helper()
	c, ok := geo.Default().City(cityID)
	if !ok {
		t.Fatalf("missing city %s", cityID)
	}
	return c.Coord
}

// rttFor fabricates a plausible RTT for a true distance (path inflation
// ~1.8 over fiber at 200 km/ms, i.e. comfortably above the SOL floor).
func rttFor(distKm float64) float64 { return 2*distKm*1.8/200.0 + 1 }

func TestSingleProbeDisc(t *testing.T) {
	probe := coord(t, "Frankfurt, DE")
	est := Locate([]Measurement{{Probe: probe, RTTMs: 10}}, DefaultConfig())
	if !est.Feasible {
		t.Fatal("single measurement must be feasible")
	}
	// The feasible region is the whole disc: its centroid sits at the probe.
	if d := geo.DistanceKm(est.Center, probe); d > 100 {
		t.Errorf("center %.0f km from probe, want near it", d)
	}
	maxR := geo.MaxDistanceKm(10)
	if est.RadiusKm < maxR/2 || est.RadiusKm > maxR*1.5 {
		t.Errorf("radius %.0f km, want on the order of %.0f", est.RadiusKm, maxR)
	}
}

func TestTriangulationConvergesOnTruth(t *testing.T) {
	truth := coord(t, "Amsterdam, NL")
	probes := []string{"Frankfurt, DE", "Paris, FR", "London, GB", "Copenhagen, DK"}
	var ms []Measurement
	for _, p := range probes {
		pc := coord(t, p)
		ms = append(ms, Measurement{Probe: pc, RTTMs: rttFor(geo.DistanceKm(pc, truth))})
	}
	est := Locate(ms, DefaultConfig())
	if !est.Feasible {
		t.Fatal("well-formed system must be feasible")
	}
	if d := geo.DistanceKm(est.Center, truth); d > 400 {
		t.Errorf("estimate %.0f km from truth, want < 400", d)
	}
	city, dist, ok := NearestCity(est, geo.Default())
	if !ok {
		t.Fatal("nearest city lookup failed")
	}
	if city.Country != "NL" && city.Country != "BE" && city.Country != "DE" {
		t.Errorf("nearest city %s (%.0f km), want in the Benelux area", city.ID(), dist)
	}
	cands := CountryCandidates(est, geo.Default())
	found := false
	for _, cc := range cands {
		if cc == "NL" {
			found = true
		}
	}
	if !found {
		t.Errorf("NL missing from candidates %v", cands)
	}
}

func TestInfeasibleSystem(t *testing.T) {
	// Two probes on different continents both claiming the target is
	// within a few hundred kilometers: impossible.
	ms := []Measurement{
		{Probe: coord(t, "Tokyo, JP"), RTTMs: 2},
		{Probe: coord(t, "Paris, FR"), RTTMs: 2},
	}
	est := Locate(ms, DefaultConfig())
	if est.Feasible {
		t.Error("contradictory constraints must be infeasible")
	}
	if NearestCityFeasible(est) {
		t.Error("infeasible estimate must not map to a city")
	}
	if CountryCandidates(est, geo.Default()) != nil {
		t.Error("infeasible estimate has no candidates")
	}
}

// NearestCityFeasible is a test helper wrapping the ok bit.
func NearestCityFeasible(e Estimate) bool {
	_, _, ok := NearestCity(e, geo.Default())
	return ok
}

func TestMoreProbesTightenTheRegion(t *testing.T) {
	truth := coord(t, "Singapore, SG")
	probeIDs := []string{"Kuala Lumpur, MY", "Jakarta, ID", "Bangkok, TH", "Hong Kong, HK", "Manila, PH"}
	var ms []Measurement
	var prev float64 = -1
	for _, id := range probeIDs {
		pc := coord(t, id)
		ms = append(ms, Measurement{Probe: pc, RTTMs: rttFor(geo.DistanceKm(pc, truth))})
		est := Locate(ms, DefaultConfig())
		if !est.Feasible {
			t.Fatalf("feasibility lost at %d probes", len(ms))
		}
		if prev >= 0 && est.RadiusKm > prev*1.5+100 {
			t.Errorf("radius grew substantially with more constraints: %.0f -> %.0f", prev, est.RadiusKm)
		}
		prev = est.RadiusKm
	}
	final := Locate(ms, DefaultConfig())
	if final.RadiusKm > 1500 {
		t.Errorf("final uncertainty %.0f km too large for 5 regional probes", final.RadiusKm)
	}
}

func TestEmptyMeasurements(t *testing.T) {
	est := Locate(nil, DefaultConfig())
	if est.Feasible {
		t.Error("no measurements must be infeasible")
	}
}

func TestDefaultConfigApplied(t *testing.T) {
	probe := coord(t, "Paris, FR")
	est := Locate([]Measurement{{Probe: probe, RTTMs: 5}}, Config{})
	if !est.Feasible {
		t.Error("zero config must fall back to defaults")
	}
}
