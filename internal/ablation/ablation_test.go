package ablation_test

import (
	"context"
	"net/netip"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/ablation"
	"github.com/gamma-suite/gamma/internal/core"
)

func runAblation(t *testing.T) []ablation.Metrics {
	t.Helper()
	w, err := gamma.NewWorld(11)
	if err != nil {
		t.Fatal(err)
	}
	sels, err := gamma.SelectTargets(w)
	if err != nil {
		t.Fatal(err)
	}
	var datasets []*core.Dataset
	for _, cc := range []string{"PK", "NZ", "RU"} {
		ds, err := gamma.RunVolunteer(context.Background(), w, cc, sels[cc])
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, ds)
	}
	truth := func(addr netip.Addr) (string, bool) {
		h, ok := w.Net.HostByAddr(addr)
		if !ok {
			return "", false
		}
		return h.City.Country, true
	}
	metrics, err := ablation.Run(gamma.PipelineEnv(w), datasets, truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	return metrics
}

func TestAblationShapes(t *testing.T) {
	metrics := runAblation(t)
	byName := map[string]ablation.Metrics{}
	for _, m := range metrics {
		byName[m.Variant] = m
	}
	full := byName["full cascade"]
	dbOnly := byName["database only"]

	if full.Retained == 0 || dbOnly.Retained == 0 {
		t.Fatalf("variants retained nothing: %+v", metrics)
	}
	// The full cascade trades recall for precision: it must retain fewer
	// claims than the bare database but be at least as precise.
	if full.Retained >= dbOnly.Retained {
		t.Errorf("full cascade retained %d >= database-only %d", full.Retained, dbOnly.Retained)
	}
	if full.PrecisionPct < dbOnly.PrecisionPct {
		t.Errorf("full cascade precision %.1f%% below database-only %.1f%%",
			full.PrecisionPct, dbOnly.PrecisionPct)
	}
	// The validated framework is near-perfectly precise on foreign servers.
	if full.PrecisionPct < 99 {
		t.Errorf("full cascade precision = %.2f%%, want ~100%%", full.PrecisionPct)
	}
	// And conservative: recall well below 100.
	if full.RecallPct >= 95 {
		t.Errorf("full cascade recall = %.1f%%, expected conservative discards", full.RecallPct)
	}
	// Destination attribution should also be better under the cascade.
	if full.DestAccPct < dbOnly.DestAccPct {
		t.Errorf("full cascade dest accuracy %.1f%% below database-only %.1f%%",
			full.DestAccPct, dbOnly.DestAccPct)
	}
	// Every recorded variant scored some ground-truth-known servers.
	for _, m := range metrics {
		if m.TrueForeign == 0 {
			t.Errorf("variant %q saw no truly-foreign servers", m.Variant)
		}
	}
}

func TestAblationVariantCount(t *testing.T) {
	vs := ablation.DefaultVariants()
	if len(vs) != 6 {
		t.Fatalf("variants = %d, want 6", len(vs))
	}
	if vs[0].Name != "full cascade" {
		t.Errorf("first variant = %q", vs[0].Name)
	}
}
