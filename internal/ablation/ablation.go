// Package ablation quantifies what each stage of the multi-constraint
// geolocation cascade (§4.1) contributes. It reruns the Box-2 pipeline
// with individual constraints disabled and scores every variant against
// the simulator's ground truth:
//
//   - precision: of the servers the framework retained as non-local, how
//     many are truly hosted outside the measuring country? The validated
//     framework the paper adopts reports 100% precision on foreign
//     servers; the ablation shows which constraints that depends on.
//   - destination accuracy: of the true positives, how many are attributed
//     to the correct hosting country (the input to every flow figure)?
//   - recall: how many of the truly-foreign observed servers survive the
//     cascade? Conservativeness costs recall — the paper calls its results
//     "a lower bound" for exactly this reason.
package ablation

import (
	"fmt"
	"net/netip"

	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/stats"
)

// Variant is one cascade configuration under test.
type Variant struct {
	Name   string
	Config geoloc.Config
}

// DefaultVariants covers the full cascade, each constraint removed in
// turn, and the bare database.
func DefaultVariants() []Variant {
	full := geoloc.DefaultConfig()
	v := func(name string, mod func(*geoloc.Config)) Variant {
		cfg := full
		mod(&cfg)
		return Variant{Name: name, Config: cfg}
	}
	return []Variant{
		v("full cascade", func(*geoloc.Config) {}),
		v("no reverse-DNS", func(c *geoloc.Config) { c.DisableRDNSConstraint = true }),
		v("no destination probe", func(c *geoloc.Config) { c.DisableDestinationConstraint = true }),
		v("no reference latency", func(c *geoloc.Config) { c.DisableReferenceCheck = true }),
		v("no source constraint", func(c *geoloc.Config) {
			c.DisableSourceConstraint = true
			c.DisableReferenceCheck = true
		}),
		v("database only", func(c *geoloc.Config) {
			c.DisableSourceConstraint = true
			c.DisableReferenceCheck = true
			c.DisableDestinationConstraint = true
			c.DisableRDNSConstraint = true
		}),
	}
}

// Truth answers ground-truth questions about an address. ok is false when
// the address is unknown (no precision judgement possible).
type Truth func(addr netip.Addr) (country string, ok bool)

// Metrics scores one variant.
type Metrics struct {
	Variant        string  `json:"variant"`
	Retained       int     `json:"retained"`
	TruePositives  int     `json:"true_positives"`
	FalsePositives int     `json:"false_positives"`
	WrongDest      int     `json:"wrong_dest"`
	TrueForeign    int     `json:"true_foreign"` // observed servers truly abroad
	PrecisionPct   float64 `json:"precision_pct"`
	DestAccPct     float64 `json:"dest_accuracy_pct"`
	RecallPct      float64 `json:"recall_pct"`
}

// Run executes the pipeline once per variant and scores it.
func Run(env pipeline.Env, datasets []*core.Dataset, truth Truth, variants []Variant) ([]Metrics, error) {
	if len(variants) == 0 {
		variants = DefaultVariants()
	}
	var out []Metrics
	for _, v := range variants {
		venv := env
		venv.GeolocConfig = v.Config
		// The pipeline anonymizes datasets in place; work on copies so the
		// caller's data survives repeated runs.
		copies := make([]*core.Dataset, len(datasets))
		for i, ds := range datasets {
			cp := *ds
			copies[i] = &cp
		}
		res, err := pipeline.Process(venv, copies)
		if err != nil {
			return nil, fmt.Errorf("ablation: variant %q: %w", v.Name, err)
		}
		out = append(out, score(v.Name, res, truth))
	}
	return out, nil
}

func score(name string, res *pipeline.Result, truth Truth) Metrics {
	m := Metrics{Variant: name}
	for _, cc := range res.CountryCodes() {
		cr := res.Countries[cc]
		for _, obs := range cr.Verdicts {
			addr, err := netip.ParseAddr(obs.Addr)
			if err != nil {
				continue
			}
			trueCountry, known := truth(addr)
			if !known {
				continue
			}
			trulyForeign := trueCountry != cc
			if trulyForeign {
				m.TrueForeign++
			}
			if obs.Class != geoloc.NonLocal {
				continue
			}
			m.Retained++
			if trulyForeign {
				m.TruePositives++
				if obs.DestCountry != trueCountry {
					m.WrongDest++
				}
			} else {
				m.FalsePositives++
			}
		}
	}
	m.PrecisionPct = stats.Percent(m.TruePositives, m.TruePositives+m.FalsePositives)
	m.DestAccPct = stats.Percent(m.TruePositives-m.WrongDest, m.TruePositives)
	m.RecallPct = stats.Percent(m.TruePositives, m.TrueForeign)
	return m
}
