package gamma

import (
	"context"
	"fmt"
	"net/netip"
	"sort"

	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geodb"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/stats"
	"github.com/gamma-suite/gamma/internal/worldgen"
)

// NewLocalizedWorld builds the world as it would look after the listed
// countries' data-localization laws took effect with full compliance:
// every organization serving them does so from domestic infrastructure.
// Everything else about the world is identical to NewWorld(seed), so
// before/after comparisons isolate the law's effect — the longitudinal
// study §8 proposes, with the paper's dataset as the "before" snapshot
// (it was recorded the day before Jordan's PDPL took effect).
func NewLocalizedWorld(seed uint64, countries ...string) (*World, error) {
	return worldgen.BuildWithOptions(seed, worldgen.Options{Localize: countries})
}

// ScenarioDiff compares one country's measured tracking exposure across
// two worlds (e.g., before and after a localization law).
type ScenarioDiff struct {
	Country string `json:"country"`
	// Before/After report the share of loaded sites with ≥1 non-local
	// tracker and the count of retained non-local tracker domains.
	BeforePct     float64 `json:"before_pct"`
	AfterPct      float64 `json:"after_pct"`
	BeforeDomains int     `json:"before_domains"`
	AfterDomains  int     `json:"after_domains"`
	// Departed lists destination countries that no longer receive the
	// country's tracking data after the change.
	Departed []string `json:"departed,omitempty"`
}

// RunScenario measures a country in both worlds and diffs the outcome.
func RunScenario(ctx context.Context, before, after *World, cc string) (ScenarioDiff, error) {
	measure := func(w *World) (float64, int, map[string]bool, error) {
		sels, err := SelectTargets(w)
		if err != nil {
			return 0, 0, nil, err
		}
		sel, ok := sels[cc]
		if !ok {
			return 0, 0, nil, fmt.Errorf("gamma: no volunteer in %s", cc)
		}
		ds, err := RunVolunteer(ctx, w, cc, sel)
		if err != nil {
			return 0, 0, nil, err
		}
		res, err := Analyze(w, []*core.Dataset{ds})
		if err != nil {
			return 0, 0, nil, err
		}
		cr := res.Countries[cc]
		loaded, hit := 0, 0
		dests := map[string]bool{}
		for _, s := range cr.Sites {
			if !s.LoadOK {
				continue
			}
			loaded++
			nl := s.NonLocalTrackers()
			if len(nl) > 0 {
				hit++
			}
			for _, d := range nl {
				dests[d.DestCountry] = true
			}
		}
		return stats.Percent(hit, loaded), cr.Funnel.NonLocal, dests, nil
	}

	out := ScenarioDiff{Country: cc}
	var beforeDests, afterDests map[string]bool
	var err error
	if out.BeforePct, out.BeforeDomains, beforeDests, err = measure(before); err != nil {
		return out, err
	}
	if out.AfterPct, out.AfterDomains, afterDests, err = measure(after); err != nil {
		return out, err
	}
	for d := range beforeDests {
		if !afterDests[d] {
			out.Departed = append(out.Departed, d)
		}
	}
	sort.Strings(out.Departed)
	return out, nil
}

// DBAccuracy scores one geolocation database against ground truth.
type DBAccuracy struct {
	DB          string  `json:"db"`
	Entries     int     `json:"entries"`
	CoveragePct float64 `json:"coverage_pct"`
	CountryPct  float64 `json:"country_pct"` // correct-country rate
	CityPct     float64 `json:"city_pct"`    // correct-city rate
	MedianErrKm float64 `json:"median_err_km"`
}

// CompareGeoDBs scores the study's IPmap-style database and every
// commercial-style alternative against the simulator's ground truth — the
// §4.1 reliability comparison the geolocation literature performs.
func CompareGeoDBs(w *World) []DBAccuracy {
	dbs := map[string]*geodb.DB{w.IPMap.Name(): w.IPMap}
	for name, db := range w.AltDBs {
		dbs[name] = db
	}
	hosts := w.Net.Hosts()
	var out []DBAccuracy
	names := make([]string, 0, len(dbs))
	for name := range dbs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		db := dbs[name]
		acc := DBAccuracy{DB: name, Entries: db.Len()}
		var errs []float64
		covered, country, city := 0, 0, 0
		for _, h := range hosts {
			claim, ok := db.Lookup(h.Addr)
			if !ok {
				continue
			}
			covered++
			if claim.Country == h.City.Country {
				country++
			}
			if claim.ID() == h.City.ID() {
				city++
			}
			errs = append(errs, geo.DistanceKm(claim.Coord, h.City.Coord))
		}
		acc.CoveragePct = stats.Percent(covered, len(hosts))
		acc.CountryPct = stats.Percent(country, covered)
		acc.CityPct = stats.Percent(city, covered)
		acc.MedianErrKm = stats.Quantile(errs, 0.5)
		out = append(out, acc)
	}
	return out
}

// ClassifyWithDB reruns local/non-local classification for one country
// using an alternative database and reports how many claims flip relative
// to the primary database — the cost of trusting a different provider.
func ClassifyWithDB(w *World, cc string, db *geodb.DB, addrs []netip.Addr) (flips int) {
	vol := w.Volunteers[cc]
	// Database-only classification isolates what the provider choice does.
	cfg := geoloc.Config{
		ReferenceFloor:               0.8,
		DisableSourceConstraint:      true,
		DisableDestinationConstraint: true,
		DisableRDNSConstraint:        true,
	}
	fw1 := geoloc.New(cfg, w.IPMap, nil, nil, w.Registry)
	fw2 := geoloc.New(cfg, db, nil, nil, w.Registry)
	for _, addr := range addrs {
		v1 := fw1.Classify(cc, vol.City, geoloc.Candidate{Domain: "x", Addr: addr})
		v2 := fw2.Classify(cc, vol.City, geoloc.Candidate{Domain: "x", Addr: addr})
		if v1.Class != v2.Class {
			flips++
		}
	}
	return flips
}
