module github.com/gamma-suite/gamma

go 1.22
