package gamma_test

import (
	"context"
	"fmt"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
)

// ExampleRunStudy reproduces the entire paper in one call and prints the
// §5 funnel's headline shape.
func ExampleRunStudy() {
	study, err := gamma.RunStudy(context.Background(), 42)
	if err != nil {
		panic(err)
	}
	f := study.Result.Funnel
	fmt.Println("countries measured:", len(study.Result.Countries))
	fmt.Println("funnel monotone:",
		f.NonLocalClaimed >= f.AfterSOL &&
			f.AfterSOL >= f.AfterRDNS &&
			f.AfterRDNS >= f.Trackers && f.Trackers > 0)
	// Output:
	// countries measured: 23
	// funnel monotone: true
}

// ExampleRunVolunteer measures a single country end to end.
func ExampleRunVolunteer() {
	world, err := gamma.NewWorld(42)
	if err != nil {
		panic(err)
	}
	selections, err := gamma.SelectTargets(world)
	if err != nil {
		panic(err)
	}
	ds, err := gamma.RunVolunteer(context.Background(), world, "NZ", selections["NZ"])
	if err != nil {
		panic(err)
	}
	result, err := gamma.Analyze(world, []*core.Dataset{ds})
	if err != nil {
		panic(err)
	}
	cr := result.Countries["NZ"]
	// New Zealand's tracking flows overwhelmingly to Australia (§6.3).
	au := 0
	for _, s := range cr.Sites {
		for _, d := range s.NonLocalTrackers() {
			if d.DestCountry == "AU" {
				au++
				break
			}
		}
	}
	fmt.Println("NZ sites flowing to AU:", au > 30)
	// Output:
	// NZ sites flowing to AU: true
}

// ExampleNewLocalizedWorld contrasts a country before and after a
// fully-enforced data-localization law (§8's longitudinal proposal).
func ExampleNewLocalizedWorld() {
	before, _ := gamma.NewWorld(7)
	after, _ := gamma.NewLocalizedWorld(7, "JO")
	diff, err := gamma.RunScenario(context.Background(), before, after, "JO")
	if err != nil {
		panic(err)
	}
	fmt.Println("law visible in the measurement:", diff.AfterPct < diff.BeforePct/2)
	// Output:
	// law visible in the measurement: true
}
