package gamma

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/netsim"
	"github.com/gamma-suite/gamma/internal/tlsprobe"
)

// simTLSProber backs core.TLSProber with the world's TLS deployments.
type simTLSProber struct {
	scanner *tlsprobe.Scanner
}

func (s simTLSProber) Scan(_ context.Context, addr netip.Addr, hostname string) (tlsprobe.ScanResult, error) {
	return s.scanner.Scan(addr, hostname), nil
}

// simPinger backs core.Pinger with the data-plane simulator.
type simPinger struct {
	net       *netsim.Network
	vantageID string
}

func (s simPinger) Ping(_ context.Context, addr netip.Addr) (float64, bool, error) {
	return s.net.Ping(s.vantageID, addr)
}

// EnableSecurityProbes turns on the optional C3 probes (testssl-style TLS
// scans and ping) for a volunteer environment produced by VolunteerEnv.
// The paper's main study ran without them; Gamma supports them (§3).
func EnableSecurityProbes(w *World, cc string, env *core.Env, cfg *core.Config) error {
	vol, ok := w.Volunteers[cc]
	if !ok {
		return fmt.Errorf("gamma: no volunteer in %s", cc)
	}
	if w.TLS == nil {
		return fmt.Errorf("gamma: world has no TLS deployments")
	}
	env.TLS = simTLSProber{
		scanner: tlsprobe.NewScanner(w.TLS, time.Date(2024, 3, 16, 0, 0, 0, 0, time.UTC)),
	}
	env.Pinger = simPinger{net: w.Net, vantageID: vol.VantageID}
	cfg.TLSScanEnabled = true
	cfg.PingEnabled = true
	return nil
}
