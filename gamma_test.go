package gamma_test

import (
	"context"
	"strings"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/core"
)

// The full study is expensive (~1 s); run it once and share.
var studyOnce *gamma.Study

func fullStudy(t *testing.T) *gamma.Study {
	t.Helper()
	if studyOnce == nil {
		s, err := gamma.RunStudy(context.Background(), 42)
		if err != nil {
			t.Fatalf("RunStudy: %v", err)
		}
		studyOnce = s
	}
	return studyOnce
}

func TestRunStudyEndToEnd(t *testing.T) {
	study := fullStudy(t)
	if len(study.Datasets) != 23 {
		t.Fatalf("datasets = %d, want 23", len(study.Datasets))
	}
	if len(study.Result.Countries) != 23 {
		t.Fatalf("analyzed countries = %d", len(study.Result.Countries))
	}
	f := study.Result.Funnel
	if f.Targets < 1900 || f.LoadedOK < 1500 {
		t.Errorf("funnel too small: %+v", f)
	}
	if f.Trackers < 1000 {
		t.Errorf("trackers = %d, want thousands", f.Trackers)
	}
}

func TestSelectTargetsShape(t *testing.T) {
	study := fullStudy(t)
	for cc, sel := range study.Selections {
		if len(sel.Regional) != 50 {
			t.Errorf("%s regional targets = %d, want 50", cc, len(sel.Regional))
		}
		if len(sel.Government) == 0 || len(sel.Government) > 50 {
			t.Errorf("%s government targets = %d", cc, len(sel.Government))
		}
		for _, tg := range sel.Regional {
			if strings.HasPrefix(tg.Domain, "adult-") {
				t.Errorf("%s: adult site %s not filtered", cc, tg.Domain)
			}
		}
	}
	// Gov-sparse countries end up with short T_gov lists (Fig 2a).
	if n := len(study.Selections["LB"].Government); n > 20 {
		t.Errorf("Lebanon gov targets = %d, want sparse", n)
	}
	// The fallback source is used where similarweb has no ranking.
	if src := study.Selections["RW"].RegionalSource; src != "semrush" {
		t.Errorf("Rwanda regional source = %q, want semrush", src)
	}
	if src := study.Selections["PK"].RegionalSource; src != "similarweb" {
		t.Errorf("Pakistan regional source = %q, want similarweb", src)
	}
}

func TestPaperClaimsReproduce(t *testing.T) {
	study := fullStudy(t)
	rows := gamma.CompareWithPaper(study)
	if len(rows) < 50 {
		t.Fatalf("comparison rows = %d", len(rows))
	}
	ok := 0
	for _, r := range rows {
		if r.ShapeOK {
			ok++
		} else {
			t.Logf("shape mismatch: %s %s: paper %s vs measured %s", r.ID, r.Metric, r.Paper, r.Measured)
		}
	}
	if ok < len(rows)-4 {
		t.Errorf("only %d/%d paper claims reproduce", ok, len(rows))
	}
}

func TestStudyDeterminism(t *testing.T) {
	a, err := gamma.RunStudy(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gamma.RunStudy(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Result.Funnel, b.Result.Funnel
	if fa != fb {
		t.Errorf("funnels differ between identical seeds:\n%+v\n%+v", fa, fb)
	}
	for cc := range a.Result.Countries {
		if len(a.Result.Countries[cc].Verdicts) != len(b.Result.Countries[cc].Verdicts) {
			t.Errorf("%s verdict counts differ", cc)
		}
	}
}

func TestDifferentSeedsDifferentWorlds(t *testing.T) {
	study := fullStudy(t)
	other, err := gamma.RunStudy(context.Background(), 1234)
	if err != nil {
		t.Fatal(err)
	}
	if study.Result.Funnel == other.Result.Funnel {
		t.Error("different seeds should produce different funnels")
	}
	// But the qualitative shape must hold for any seed.
	rows := gamma.CompareWithPaper(other)
	ok := 0
	for _, r := range rows {
		if r.ShapeOK {
			ok++
		}
	}
	if ok < len(rows)*8/10 {
		t.Errorf("seed 1234: only %d/%d claims reproduce", ok, len(rows))
	}
}

func TestRunVolunteerOptOuts(t *testing.T) {
	study := fullStudy(t)
	ds := study.Datasets["EG"]
	optOuts := 0
	for _, p := range ds.Pages {
		if p.OptedOut {
			optOuts++
		}
		if len(p.Traceroutes) != 0 {
			t.Fatal("Egypt opted out of traceroutes; none should be recorded")
		}
	}
	if optOuts != 3 {
		t.Errorf("EG site opt-outs = %d, want 3", optOuts)
	}
}

func TestVolunteerDatasetRoundTrip(t *testing.T) {
	study := fullStudy(t)
	dir := t.TempDir()
	ds := study.Datasets["TH"]
	path := dir + "/th.json"
	if err := core.SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Country != "TH" || len(loaded.Pages) != len(ds.Pages) {
		t.Error("dataset round-trip mismatch")
	}
}

func TestFullReportRenders(t *testing.T) {
	study := fullStudy(t)
	var sb strings.Builder
	gamma.FullReport(study, &sb)
	out := sb.String()
	for _, want := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "Table 1", "funnel",
		"ranking-source overlap", "first-party",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 10000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestExperimentsMarkdown(t *testing.T) {
	study := fullStudy(t)
	var sb strings.Builder
	gamma.WriteExperimentsMarkdown(study, &sb)
	out := sb.String()
	if !strings.Contains(out, "| ID | Metric | Paper |") {
		t.Error("markdown header missing")
	}
	if !strings.Contains(out, "claims reproduce") {
		t.Error("summary line missing")
	}
}

func TestPolicyRegistryComplete(t *testing.T) {
	study := fullStudy(t)
	reg := gamma.PolicyRegistry(study.World)
	if len(reg) != 23 {
		t.Fatalf("policy registry has %d countries", len(reg))
	}
	wantTypes := map[string]string{"AZ": "CS", "EG": "PA", "RU": "AC", "US": "TA", "LB": "NR"}
	for cc, typ := range wantTypes {
		if reg[cc].Type != typ {
			t.Errorf("%s policy = %s, want %s", cc, reg[cc].Type, typ)
		}
	}
	// Laws not yet in effect (Table 1 footnotes).
	for _, cc := range []string{"IN", "PK", "TH"} {
		if reg[cc].Enacted {
			t.Errorf("%s law should not be enacted yet", cc)
		}
	}
}

func TestRegionalContentVariation(t *testing.T) {
	// §8: the same site can embed different trackers in different
	// countries. youtube.com's Azerbaijan variant is the built-in example.
	study := fullStudy(t)
	// World-level: the AZ variant of youtube.com embeds ~32 Google
	// tracking hostnames while the default page embeds only cache assets.
	yt, ok := study.World.Web.Site("youtube.com")
	if !ok {
		t.Fatal("youtube.com missing from the web")
	}
	countTrackers := func(cc string) int {
		n := 0
		for _, r := range yt.ResourcesFor(cc) {
			if _, isT := study.World.TrackerHostnames[r.Domain()]; isT {
				n++
			}
			for _, c := range r.Children {
				if _, isT := study.World.TrackerHostnames[c.Domain()]; isT {
					n++
				}
			}
		}
		return n
	}
	if az := countTrackers("AZ"); az < 25 {
		t.Errorf("AZ youtube variant trackers = %d, want ~32", az)
	}
	// Measurement-level: when the AZ volunteer's load succeeded, the
	// outlier shows up in the analyzed corpus too.
	for _, s := range study.Result.Countries["AZ"].Sites {
		if s.Site == "youtube.com" && s.LoadOK {
			if n := len(s.NonLocalTrackers()); n < 15 {
				t.Errorf("AZ youtube measured non-local trackers = %d, want ~32", n)
			}
		}
	}
}

func TestFirstPartyExamplesMatchPaperShape(t *testing.T) {
	study := fullStudy(t)
	fp := analysis.FirstParty(study.Result)
	if fp.SitesWithFirstParty == 0 {
		t.Fatal("no first-party non-local sites")
	}
	if fp.ByOrg["Google"] == 0 {
		t.Error("Google ccTLD sites should appear among first-party cases")
	}
	if fp.SitesWithFirstParty > fp.SitesWithNonLocal/5 {
		t.Errorf("first-party sites (%d) should be a small minority of %d",
			fp.SitesWithFirstParty, fp.SitesWithNonLocal)
	}
}
