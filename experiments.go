package gamma

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"net/netip"
	"os"
	"path/filepath"

	"github.com/gamma-suite/gamma/internal/ablation"
	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/report"
	"github.com/gamma-suite/gamma/internal/svg"
	"github.com/gamma-suite/gamma/internal/targets"
)

// RunAblation reruns the Box-2 pipeline with each geolocation constraint
// disabled in turn and scores every variant against the world's ground
// truth (precision / destination accuracy / recall).
func RunAblation(study *Study) ([]ablation.Metrics, error) {
	var datasets []*core.Dataset
	for _, cc := range study.World.SourceCountries() {
		if ds, ok := study.Datasets[cc]; ok {
			datasets = append(datasets, ds)
		}
	}
	truth := func(addr netip.Addr) (string, bool) {
		h, ok := study.World.Net.HostByAddr(addr)
		if !ok {
			return "", false
		}
		return h.City.Country, true
	}
	return ablation.Run(PipelineEnv(study.World), datasets, truth, nil)
}

// PolicyRegistry extracts the Table 1 policy metadata from the world.
func PolicyRegistry(w *World) map[string]analysis.PolicyInfo {
	out := make(map[string]analysis.PolicyInfo, len(w.Specs))
	for cc, spec := range w.Specs {
		out[cc] = analysis.PolicyInfo{
			Type:    string(spec.Policy),
			Enacted: spec.PolicyEnacted,
			Note:    spec.PolicyNote,
		}
	}
	return out
}

// OverlapExperiment runs the §3.2 ranking-source comparison on the world's
// ranking sources.
func OverlapExperiment(w *World) targets.OverlapResult {
	return targets.OverlapExperiment(targets.Sources{
		Similarweb: w.Rankings.Similarweb,
		Semrush:    w.Rankings.Semrush,
		Ahrefs:     w.Rankings.Ahrefs,
	})
}

// FullReport renders every figure and table of the study to w.
func FullReport(study *Study, w io.Writer) {
	res := study.Result
	fmt.Fprintf(w, "Gamma study report (seed %d)\n\n", study.World.Seed)

	report.Funnel(w, res.Funnel)
	fmt.Fprintln(w)

	ov := OverlapExperiment(study.World)
	fmt.Fprintln(w, "== §3.2: ranking-source overlap ==")
	fmt.Fprintf(w, "countries with complete lists: %d; semrush overlap %.1f%%, ahrefs overlap %.1f%%\n\n",
		ov.Countries, ov.SemrushPct, ov.AhrefsPct)

	report.Fig2(w, analysis.Fig2Composition(res), analysis.Fig2LoadSuccess(res))
	fmt.Fprintln(w)
	prev := analysis.Fig3Prevalence(res)
	report.Fig3(w, prev)
	fmt.Fprintln(w)
	report.Fig4(w, analysis.Fig4Distribution(res))
	fmt.Fprintln(w)
	report.Fig5(w, analysis.Fig5DestShares(res), analysis.Fig5CountryFlows(res), 20)
	fmt.Fprintln(w)
	report.Fig6(w, analysis.Fig6ContinentFlows(res, study.World.Registry))
	fmt.Fprintln(w)
	report.Fig7(w, analysis.Fig7HostingCounts(res))
	fmt.Fprintln(w)
	report.Fig8(w, analysis.Fig8OrgFlows(res), 15)
	fmt.Fprintln(w)
	report.Fig9(w, analysis.Fig9DomainFrequency(res), 3)
	fmt.Fprintln(w)
	report.Table1(w, analysis.Table1(prev, PolicyRegistry(study.World)))
	fmt.Fprintln(w)
	report.Ownership(w, analysis.Ownership(res))
	fmt.Fprintln(w)
	report.FirstParty(w, analysis.FirstParty(res))
	fmt.Fprintln(w, "\n== Research-question summary (regenerated from the data) ==")
	fmt.Fprint(w, analysis.RenderAnswers(analysis.Answers(res, study.World.Registry, PolicyRegistry(study.World))))
	if len(study.Datasets) > 0 {
		fmt.Fprintln(w)
		var datasets []*core.Dataset
		for _, cc := range study.World.SourceCountries() {
			if ds, ok := study.Datasets[cc]; ok {
				datasets = append(datasets, ds)
			}
		}
		report.Cookies(w, analysis.Cookies(datasets))
	}
}

// WriteFigures renders the flow figures and the prevalence bar chart as
// SVG files (fig3.svg, fig5.svg, fig6.svg, fig8.svg) into dir.
func WriteFigures(study *Study, dir string) error {
	res := study.Result
	files := map[string]string{
		"fig3.svg": svg.Fig3(analysis.Fig3Prevalence(res)),
		"fig5.svg": svg.Fig5(analysis.Fig5CountryFlows(res), 40),
		"fig6.svg": svg.Fig6(analysis.Fig6ContinentFlows(res, study.World.Registry)),
		"fig8.svg": svg.Fig8(analysis.Fig8OrgFlows(res), 40),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ExperimentRow is one paper-vs-measured comparison line.
type ExperimentRow struct {
	ID       string // table/figure identifier
	Metric   string
	Paper    string
	Measured string
	ShapeOK  bool // whether the qualitative claim reproduces
}

// CompareWithPaper evaluates every headline claim of the paper against the
// measured study and reports whether the qualitative shape holds.
func CompareWithPaper(study *Study) []ExperimentRow {
	res := study.Result
	w := study.World
	var rows []ExperimentRow
	add := func(id, metric, paper, measured string, ok bool) {
		rows = append(rows, ExperimentRow{ID: id, Metric: metric, Paper: paper, Measured: measured, ShapeOK: ok})
	}
	f := res.Funnel

	// ---- §3.2 ranking overlap ----
	ov := OverlapExperiment(w)
	add("§3.2", "semrush overlap with similarweb", "65%",
		fmt.Sprintf("%.1f%%", ov.SemrushPct), ov.SemrushPct > 55 && ov.SemrushPct < 75)
	add("§3.2", "ahrefs overlap with similarweb", "48%",
		fmt.Sprintf("%.1f%%", ov.AhrefsPct), ov.AhrefsPct > 38 && ov.AhrefsPct < 58 && ov.AhrefsPct < ov.SemrushPct)
	add("§3.2", "countries with complete lists", "58", fmt.Sprint(ov.Countries), ov.Countries == 58)
	sels := study.Selections
	common := targets.CommonSites(sels)
	universal := 0
	inTwoThirds := 0
	for _, d := range []string{"google.com", "wikipedia.org"} {
		if common[d] == len(sels) {
			universal++
		}
	}
	for _, d := range []string{"instagram.com", "youtube.com", "facebook.com", "openai.com", "twitter.com", "whatsapp.com", "linkedin.com"} {
		if common[d] >= 2*len(sels)/3 {
			inTwoThirds++
		}
	}
	add("§3.2", "sites common to all countries", "2 (google.com, wikipedia.org)",
		fmt.Sprint(universal), universal == 2)
	add("§3.2", "global sites in ≥2/3 of countries", "7", fmt.Sprint(inTwoThirds), inTwoThirds >= 5)

	// ---- §5 funnel ----
	add("§5", "target websites", "2005", fmt.Sprint(f.Targets), f.Targets > 1500 && f.Targets < 2600)
	optOutPct := 100 * float64(f.Targets-f.TargetsAfterOptOut) / float64(f.Targets)
	add("§5", "volunteer opt-outs", "0.99% of targets",
		fmt.Sprintf("%.2f%%", optOutPct), optOutPct > 0.3 && optOutPct < 2)
	add("§5", "unique targets", "1522", fmt.Sprint(f.UniqueTargets), f.UniqueTargets > 1200)
	add("§5", "domain observations / unique", "≈26K / ≈5K",
		fmt.Sprintf("%d / %d", f.DomainObservations, f.UniqueDomains),
		f.DomainObservations > 8000 && f.UniqueDomains > 3000)
	add("§5", "unique server IPs", "≈9K", fmt.Sprint(f.UniqueIPs), f.UniqueIPs > 1000)
	add("§5", "source traceroutes", "≈27K", fmt.Sprint(f.SourceTraceroutes), f.SourceTraceroutes > 12000)
	add("§5", "destination traceroutes", "≈3.4K", fmt.Sprint(f.DestTraceroutes), f.DestTraceroutes > 1500)
	add("§5", "non-local before constraints", "≈14K", fmt.Sprint(f.NonLocalClaimed), f.NonLocalClaimed > 3000)
	add("§5", "after SOL constraints", "≈6.1K (44% survive)",
		fmt.Sprintf("%d (%.0f%% survive)", f.AfterSOL, 100*float64(f.AfterSOL)/float64(max(1, f.NonLocalClaimed))),
		f.AfterSOL < f.NonLocalClaimed)
	add("§5", "after reverse-DNS constraint", "≈4.7K",
		fmt.Sprint(f.AfterRDNS), f.AfterRDNS < f.AfterSOL && f.AfterRDNS > 0)
	add("§5", "tracker-associated", "≈2.7K", fmt.Sprint(f.Trackers), f.Trackers < f.AfterRDNS && f.Trackers > 1000)
	listed, manual := 0, 0
	for _, src := range res.TrackerDomains {
		if src == "manual" {
			manual++
		} else {
			listed++
		}
	}
	add("§4.2", "identified tracker domains (list + manual)", "505 (441 + 64)",
		fmt.Sprintf("%d (%d + %d)", listed+manual, listed, manual),
		listed > manual && manual > 0)

	// ---- Fig 2b ----
	loads := analysis.Fig2LoadSuccess(res)
	var jpPct, saPct float64
	over86 := 0
	for _, l := range loads {
		switch l.Country {
		case "JP":
			jpPct = l.Pct
		case "SA":
			saPct = l.Pct
		}
		if l.Pct >= 86 {
			over86++
		}
	}
	add("Fig 2b", "typical load success", ">86% in most countries",
		fmt.Sprintf("%d/23 countries above 86%%", over86), over86 >= 15)
	add("Fig 2b", "Japan load success", "64%", fmt.Sprintf("%.0f%%", jpPct), jpPct < 75)
	add("Fig 2b", "Saudi Arabia load success", "56%", fmt.Sprintf("%.0f%%", saPct), saPct < 70)

	// ---- Fig 3 ----
	prev := analysis.Fig3Prevalence(res)
	byCC := map[string]analysis.Prevalence{}
	var regs, govs []float64
	for _, p := range prev {
		byCC[p.Country] = p
		regs = append(regs, p.RegionalPct)
		govs = append(govs, p.GovernmentPct)
	}
	rm, rs := analysis.MeanStd(regs)
	gm, gs := analysis.MeanStd(govs)
	add("Fig 3", "regional prevalence mean (σ)", "46.16% (33.77)",
		fmt.Sprintf("%.2f%% (%.2f)", rm, rs), rm > 30 && rm < 60 && rs > 20)
	add("Fig 3", "government prevalence mean (σ)", "40.21% (31.5)",
		fmt.Sprintf("%.2f%% (%.2f)", gm, gs), gm > 25 && gm < 55 && gs > 18)
	corr, _ := analysis.Fig3Correlation(prev)
	add("Fig 3", "regional/government correlation", "0.89", fmt.Sprintf("%.2f", corr), corr > 0.7)
	add("Fig 3", "Canada & USA regional prevalence", "0%",
		fmt.Sprintf("CA %.0f%%, US %.0f%%", byCC["CA"].RegionalPct, byCC["US"].RegionalPct),
		byCC["CA"].RegionalPct == 0 && byCC["US"].RegionalPct == 0)
	add("Fig 3", "Rwanda regional prevalence", "93%",
		fmt.Sprintf("%.0f%%", byCC["RW"].RegionalPct), byCC["RW"].RegionalPct > 75)
	add("Fig 3", "New Zealand regional prevalence", "81%",
		fmt.Sprintf("%.0f%%", byCC["NZ"].RegionalPct), byCC["NZ"].RegionalPct > 65)
	add("Fig 3", "India relies on local servers", "≈1%",
		fmt.Sprintf("%.1f%%", byCC["IN"].OverallPct), byCC["IN"].OverallPct < 6)

	// ---- Fig 4 ----
	dist := analysis.Fig4Distribution(res)
	byD := map[string]analysis.Distribution{}
	for _, d := range dist {
		byD[d.Country] = d
	}
	add("Fig 4", "Jordan mean trackers/site", "15.7 (σ 12)",
		fmt.Sprintf("%.1f (σ %.1f)", byD["JO"].Combined.Mean, byD["JO"].Combined.StdDev),
		byD["JO"].Combined.Mean > 8)
	add("Fig 4", "Egypt mean trackers/site", "12.1 (σ 8.5)",
		fmt.Sprintf("%.1f (σ %.1f)", byD["EG"].Combined.Mean, byD["EG"].Combined.StdDev),
		byD["EG"].Combined.Mean > 7)
	add("Fig 4", "Australia/Taiwan/Argentina low counts", "1-3",
		fmt.Sprintf("AU %.1f, TW %.1f, AR %.1f", byD["AU"].Combined.Mean, byD["TW"].Combined.Mean, byD["AR"].Combined.Mean),
		byD["AU"].Combined.Mean < 5 && byD["TW"].Combined.Mean < 5 && byD["AR"].Combined.Mean < 5)
	posSkew := 0
	for _, d := range dist {
		if d.Skewness > 0 {
			posSkew++
		}
	}
	add("Fig 4", "most countries positively skewed", "concentration of low values",
		fmt.Sprintf("%d/%d countries with positive skew", posSkew, len(dist)), posSkew >= len(dist)*3/5)

	// ---- Fig 5 ----
	shares := analysis.Fig5DestShares(res)
	shareOf := func(cc string) analysis.DestShare {
		for _, s := range shares {
			if s.Dest == cc {
				return s
			}
		}
		return analysis.DestShare{Dest: cc}
	}
	fr, de, gb, ke, us, au := shareOf("FR"), shareOf("DE"), shareOf("GB"), shareOf("KE"), shareOf("US"), shareOf("AU")
	add("Fig 5", "France is the top destination", "43% of tracking sites",
		fmt.Sprintf("%.1f%% (rank 1: %v)", fr.SitePct, shares[0].Dest == "FR"),
		shares[0].Dest == "FR")
	add("Fig 5", "UK share", "24%", fmt.Sprintf("%.1f%%", gb.SitePct), gb.SitePct > 12 && gb.SitePct < 40)
	add("Fig 5", "Germany share", "23%", fmt.Sprintf("%.1f%%", de.SitePct), de.SitePct > 12 && de.SitePct < 45)
	add("Fig 5", "Kenya share (UG/RW regional hub)", "14%", fmt.Sprintf("%.1f%%", ke.SitePct), ke.SitePct > 7 && ke.SitePct < 22)
	add("Fig 5", "Australia share (NZ-dominated)", "23%", fmt.Sprintf("%.1f%%", au.SitePct), au.SitePct > 6)
	add("Fig 5", "USA receives small flows from many sources", "5% of sites, 15 sources",
		fmt.Sprintf("%.1f%% of sites, %d sources", us.SitePct, us.SourceCount),
		us.SitePct < 12 && us.SourceCount >= 10)
	add("Fig 5", "France receives from many sources", "15 source countries",
		fmt.Sprint(fr.SourceCount), fr.SourceCount >= 12)
	add("Fig 5", "US gov flows only from the UAE", "UAE only",
		fmt.Sprintf("gov-source-only=%s", us.GovSourceOnly), us.GovSourceOnly == "AE")

	// ---- Fig 6 ----
	cont := analysis.Fig6ContinentFlows(res, w.Registry)
	inward := analysis.InwardFlowContinents(cont)
	add("Fig 6", "Europe receives inward flow from all other continents", "5 source continents",
		fmt.Sprintf("%d source continents", len(inward[geo.Europe])), len(inward[geo.Europe]) >= 4)
	add("Fig 6", "Africa receives no inward flow", "0 external sources",
		fmt.Sprintf("%d external sources", len(inward[geo.Africa])), len(inward[geo.Africa]) == 0)

	// ---- Fig 7 ----
	hosting := analysis.Fig7HostingCounts(res)
	hostOf := func(cc string) int {
		for _, h := range hosting {
			if h.Dest == cc {
				return h.Domains
			}
		}
		return 0
	}
	topHost := ""
	if len(hosting) > 0 {
		topHost = hosting[0].Dest
	}
	add("Fig 7", "Kenya hosts the most distinct tracking domains", "210 (rank 1)",
		fmt.Sprintf("%d (rank 1 = %s)", hostOf("KE"), topHost),
		hostOf("KE") > 80 && (topHost == "KE" || topHost == "DE" || topHost == "FR"))
	add("Fig 7", "Germany hosts many distinct domains", "172",
		fmt.Sprint(hostOf("DE")), hostOf("DE") > 60)
	add("Fig 7", "Malaysia is a Southeast-Asian hub", "89",
		fmt.Sprint(hostOf("MY")), hostOf("MY") > 25)
	add("Fig 7", "USA hosts few distinct domains", "16",
		fmt.Sprint(hostOf("US")), hostOf("US") < hostOf("DE") && hostOf("US") < 40)

	// ---- Fig 8 ----
	orgFlows := analysis.Fig8OrgFlows(res)
	totals := analysis.OrgTotals(orgFlows)
	majorsTop := len(totals) > 0 && totals[0].Org == "Google"
	add("Fig 8", "Google dominates organizations", "largest org",
		fmt.Sprintf("top org = %s", totals[0].Org), majorsTop)
	excl := analysis.ExclusiveOrgs(orgFlows)
	joExcl := 0
	for _, cc := range excl {
		if cc == "JO" {
			joExcl++
		}
	}
	add("Fig 8", "Jordan-exclusive orgs (Jubnaadserve, Onetag, Optad360)", "3",
		fmt.Sprint(joExcl), joExcl >= 2)

	// ---- Table 1 ----
	t1 := analysis.Table1(prev, PolicyRegistry(w))
	trend, _ := analysis.PolicyTrend(t1)
	add("Table 1", "no positive policy impact (stricter ⇒ MORE non-local)", "weak negative trend for permissiveness",
		fmt.Sprintf("strictness/non-local correlation %.2f", trend), trend > 0)

	// ---- §6.5 ----
	own := analysis.Ownership(res)
	add("§6.5", "distinct owner organizations", "≈70", fmt.Sprint(own.Orgs), own.Orgs > 40)
	add("§6.5", "US share of owner orgs", "50%",
		fmt.Sprintf("%.0f%%", own.HQSharePct["US"]), own.HQSharePct["US"] > 35 && own.HQSharePct["US"] < 65)
	add("§6.5", "UK share of owner orgs", "10%",
		fmt.Sprintf("%.0f%%", own.HQSharePct["GB"]), own.HQSharePct["GB"] > 4 && own.HQSharePct["GB"] < 20)
	add("§6.5", "trackers on AWS / Google Cloud", "50 / 5",
		fmt.Sprintf("%d / %d", own.AWSTrackers, own.GCPTrackers), own.AWSTrackers > own.GCPTrackers && own.AWSTrackers > 10)
	add("§6.5", "AWS-hosted trackers in Nairobi serve UG/RW", "SoundCloud, Spot.im, Snapchat, ScorecardResearch, Lotame",
		strings.Join(own.KenyaAWSOrgs, ", "), len(own.KenyaAWSOrgs) >= 3)

	// ---- §6.7 ----
	fp := analysis.FirstParty(res)
	googleShare := 0.0
	if fp.SitesWithFirstParty > 0 {
		googleShare = 100 * float64(fp.ByOrg["Google"]) / float64(fp.SitesWithFirstParty)
	}
	add("§6.7", "sites with non-local trackers", "575",
		fmt.Sprint(fp.SitesWithNonLocal), fp.SitesWithNonLocal > 300)
	add("§6.7", "sites embedding first-party non-local trackers", "23",
		fmt.Sprint(fp.SitesWithFirstParty),
		fp.SitesWithFirstParty > 3 && fp.SitesWithFirstParty < fp.SitesWithNonLocal/5)
	add("§6.7", "share of first-party sites owned by Google", "≈50%",
		fmt.Sprintf("%.0f%%", googleShare), googleShare > 25)

	return rows
}

// WriteExperimentsMarkdown emits the paper-vs-measured table as Markdown.
func WriteExperimentsMarkdown(study *Study, w io.Writer) {
	rows := CompareWithPaper(study)
	fmt.Fprintf(w, "| ID | Metric | Paper | Measured (seed %d) | Shape |\n", study.World.Seed)
	fmt.Fprintln(w, "|---|---|---|---|---|")
	okCount := 0
	for _, r := range rows {
		mark := "✅"
		if !r.ShapeOK {
			mark = "⚠️"
		} else {
			okCount++
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n", r.ID, r.Metric, r.Paper, r.Measured, mark)
	}
	fmt.Fprintf(w, "\n%d/%d qualitative claims reproduce.\n", okCount, len(rows))
}

// SortRowsByID orders experiment rows for stable output.
func SortRowsByID(rows []ExperimentRow) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
