#!/bin/sh
# bench.sh — the repo's benchmark trajectory, one smoke iteration each.
#
# Runs the filterlist matching-engine benchmarks (hit, miss, bare-hostname
# probe, index build, parse), the pipeline's parallel-analysis benchmark,
# and the serving layer's hot-path benchmarks — monolithic and sharded
# (BenchmarkServeQueries matches BenchmarkServeQueriesSharded too) —
# with -benchtime=1x -count=1:
# fast enough for CI, and a compile+run check that every benchmark still
# works. Real before/after numbers are collected with longer benchtimes
# and recorded in BENCH_*.json.
set -eu
cd "$(dirname "$0")/.."

go test -run '^$' -bench 'BenchmarkMatch|BenchmarkEngineBuild|BenchmarkParse' \
	-benchtime=1x -count=1 ./internal/filterlist/
go test -run '^$' -bench 'BenchmarkProcessParallel' \
	-benchtime=1x -count=1 ./internal/pipeline/
go test -run '^$' -bench 'BenchmarkServeQueries|BenchmarkSnapshotBuild|BenchmarkSwapUnderLoad|BenchmarkScatterGatherDegraded' \
	-benchtime=1x -count=1 ./internal/serve/
# The analyzer's own latency budget: one full self-run (load, type-check,
# call-graph build, all seven checks over the module) must stay well
# inside 10s.
go test -run '^$' -bench 'BenchmarkSelfRun' \
	-benchtime=1x -count=1 ./internal/lint/
# Measurement-plane hot paths: the zero-alloc probe engine (allocs/op must
# read 0 for BenchmarkTraceroute) and the memoized end-to-end study. One
# smoke iteration each; BENCH_9.json holds the long-benchtime numbers.
go test -run '^$' -bench 'BenchmarkTraceroute$|BenchmarkPing|BenchmarkBaseRTT' \
	-benchmem -benchtime=1x -count=1 ./internal/netsim/
go test -run '^$' -bench 'BenchmarkRenderParse' \
	-benchtime=1x -count=1 ./internal/tracert/
go test -run '^$' -bench 'BenchmarkRunStudyEndToEnd' \
	-benchmem -benchtime=1x -count=1 .
