package gamma_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/export"
)

// TestStudyCacheEquivalence runs the full study twice — once with every
// measurement-plane memo active (the default) and once with
// StudyOptions.DisableCaches forcing direct derivation everywhere — and
// requires the exported JSON and every CSV artifact to be byte-identical.
// This is the proof that the path-parameter cache, the page/parse memos,
// and the DNS resolution memo are pure memoization, invisible in the
// outputs. The cached run must also show real traffic on each memo, so a
// wiring regression (a cache silently bypassed) fails here too.
func TestStudyCacheEquivalence(t *testing.T) {
	const seed = 20250808
	type snapshot struct {
		study *gamma.Study
		blob  []byte
		files map[string][]byte
	}
	run := func(disable bool) snapshot {
		t.Helper()
		study, err := gamma.RunStudyWithOptions(context.Background(), seed, gamma.StudyOptions{
			DisableCaches: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(struct {
			Datasets map[string]*gamma.Dataset
			Result   *gamma.Result
		}{study.Datasets, study.Result})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		names, err := export.Artifacts(study.Result, study.World.Registry, gamma.PolicyRegistry(study.World), dir)
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			files[name] = data
		}
		return snapshot{study: study, blob: blob, files: files}
	}

	cached := run(false)
	reference := run(true)

	if !bytes.Equal(cached.blob, reference.blob) {
		t.Errorf("study JSON differs between cached and reference runs (%d vs %d bytes)",
			len(cached.blob), len(reference.blob))
	}
	if len(cached.files) == 0 {
		t.Fatal("export produced no artifacts")
	}
	names := make([]string, 0, len(cached.files))
	for name := range cached.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		other, ok := reference.files[name]
		if !ok {
			t.Errorf("artifact %s missing from reference run", name)
			continue
		}
		if !bytes.Equal(cached.files[name], other) {
			t.Errorf("artifact %s differs between cached and reference runs", name)
		}
	}
	if len(reference.files) != len(cached.files) {
		t.Errorf("artifact count differs: %d vs %d", len(cached.files), len(reference.files))
	}

	// Every memo must have seen real traffic in the cached run...
	w := cached.study.World
	if st := w.Net.PathCacheStats(); st.Hits == 0 || st.Derivations == 0 {
		t.Errorf("path cache unused: %+v", st)
	}
	if st := w.Web.PageCacheStats(); st.Derivations == 0 {
		t.Errorf("page cache unused: %+v", st)
	}
	if w.Pages == nil {
		t.Error("cached world has no parse cache")
	} else if st := w.Pages.Stats(); st.Hits == 0 || st.Derivations == 0 {
		t.Errorf("parse cache unused: %+v", st)
	}
	if st := w.DNS.ResolveMemoStats(); st.Hits == 0 || st.Derivations == 0 {
		t.Errorf("resolve memo unused: %+v", st)
	}
	// ...and none in the reference run.
	r := reference.study.World
	if st := r.Net.PathCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Derivations != 0 {
		t.Errorf("reference run touched the path cache: %+v", st)
	}
	if r.Pages != nil {
		t.Error("reference world carries a parse cache")
	}
}
