// Package gamma is the public API of the Gamma web-tracking measurement
// suite — a full reproduction of "Where in the World Are My Trackers?
// Mapping Web Tracking Flow Across Diverse Geographic Regions" (IMC 2025).
//
// The package wires three layers together:
//
//   - a deterministic synthetic world (countries, tracker organizations
//     with GeoDNS steering, a web of regional and government sites, an
//     Atlas-style probe mesh, and geolocation databases with realistic
//     errors), built by NewWorld;
//   - the Gamma measurement suite itself (browser sessions, DNS/rDNS
//     collection, normalized traceroutes), run per volunteer by
//     RunVolunteer;
//   - the Box-2 analysis pipeline (multi-constraint geolocation, tracker
//     identification, flow analysis), run by Analyze.
//
// RunStudy executes the entire study across all 23 source countries:
//
//	study, err := gamma.RunStudy(context.Background(), 42)
//	if err != nil { ... }
//	fmt.Println(study.Result.Funnel.Trackers)
//
// The drivers behind the suite are interfaces (core.Browser, core.Resolver,
// core.Prober); a field deployment would implement them with Selenium, the
// system resolver and the OS traceroute tools, exactly as the paper's tool
// does.
package gamma

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/gamma-suite/gamma/internal/browser"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/dnssim"
	"github.com/gamma-suite/gamma/internal/filterlist"
	"github.com/gamma-suite/gamma/internal/netsim"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/rng"
	"github.com/gamma-suite/gamma/internal/sched"
	"github.com/gamma-suite/gamma/internal/targets"
	"github.com/gamma-suite/gamma/internal/tracert"
	"github.com/gamma-suite/gamma/internal/websim"
	"github.com/gamma-suite/gamma/internal/worldgen"
)

// World is the synthetic study environment. See worldgen for its contents.
type World = worldgen.World

// Dataset is a volunteer's uploaded recording.
type Dataset = core.Dataset

// Result is the analyzed study corpus.
type Result = pipeline.Result

// Selection is a country's chosen target list.
type Selection = targets.Selection

// NewWorld builds the calibrated synthetic world for a seed. Identical
// seeds produce identical worlds.
func NewWorld(seed uint64) (*World, error) { return worldgen.Build(seed) }

// SelectTargets runs the §3.2 target-selection method for every source
// country: top-50 regional sites from the ranking sources (with adult and
// banned sites removed) plus up to 50 government sites from the
// Tranco-style list with the search fallback.
func SelectTargets(w *World) (map[string]Selection, error) {
	src := targets.Sources{
		Similarweb: w.Rankings.Similarweb,
		Semrush:    w.Rankings.Semrush,
		Ahrefs:     w.Rankings.Ahrefs,
	}
	out := make(map[string]Selection, len(w.SourceCountries()))
	for _, cc := range w.SourceCountries() {
		banned := map[string]bool{}
		for _, d := range w.BannedSites[cc] {
			banned[d] = true
		}
		exclude := func(domain string) bool {
			if banned[domain] {
				return true
			}
			site, ok := w.Web.Site(domain)
			return ok && site.Category == "adult"
		}
		sel, err := targets.Select(cc, src, w.Tranco, w.GovIndex[cc], exclude)
		if err != nil {
			return nil, fmt.Errorf("gamma: select targets for %s: %w", cc, err)
		}
		out[cc] = sel
	}
	return out, nil
}

// --- simulation-backed drivers ---

type simBrowser struct{ b *browser.Browser }

func (s simBrowser) Load(_ context.Context, site string) (core.PageRecord, error) {
	pl := s.b.Load(site)
	rec := core.PageRecord{
		Site:       pl.SiteDomain,
		URL:        pl.SiteURL,
		OK:         pl.OK,
		FailReason: pl.FailReason,
		DurationMs: pl.DurationMs,
	}
	for _, r := range pl.Requests {
		rec.Requests = append(rec.Requests, core.RequestRecord{
			URL: r.URL, Domain: r.Domain, Type: r.Type,
			Initiator: r.Initiator, Blocked: r.Blocked,
			ThirdParty: r.ThirdParty, SetCookies: r.SetCookies,
		})
	}
	return rec, nil
}

type simResolver struct {
	dns    *dnssim.Server
	client dnssim.Client
}

func (s simResolver) Resolve(_ context.Context, domain string) (netip.Addr, error) {
	return s.dns.Resolve(domain, s.client)
}

// ResolveChain exposes CNAME chains (core.ChainResolver).
func (s simResolver) ResolveChain(_ context.Context, domain string) (netip.Addr, []string, error) {
	return s.dns.ResolveChain(domain, s.client)
}

func (s simResolver) Reverse(_ context.Context, addr netip.Addr) (string, bool) {
	return s.dns.ReversePTR(addr)
}

// simProber launches simulated traceroutes and round-trips them through
// the OS-specific output format the volunteer's machine would produce,
// exercising the tracert portability layer on the hot path. It owns a
// reusable trace buffer; the mutex keeps the prober safe for concurrent
// probes even though each volunteer runs single-threaded by default.
type simProber struct {
	net       *netsim.Network
	vantageID string
	format    tracert.Format

	mu  sync.Mutex
	buf netsim.TraceBuf
}

func (s *simProber) Traceroute(_ context.Context, dst netip.Addr) (tracert.Normalized, error) {
	// The trace result aliases the reusable buffer, so the lock is held
	// until Render has serialized it.
	s.mu.Lock()
	res, err := s.net.TracerouteInto(s.vantageID, dst, &s.buf)
	if err != nil {
		s.mu.Unlock()
		return tracert.Normalized{}, err
	}
	text, err := tracert.Render(res, s.format)
	s.mu.Unlock()
	if err != nil {
		return tracert.Normalized{}, err
	}
	return tracert.Parse(text)
}

// volunteerOS picks the probe-output dialect for a volunteer's machine:
// Windows tracert, a scapy-based prober, mtr, or plain traceroute.
func volunteerOS(seed uint64, cc string) tracert.Format {
	r := rng.New(seed, "volunteer-os", cc)
	switch r.IntN(4) {
	case 0:
		return tracert.FormatWindows
	case 1:
		return tracert.FormatScapy
	case 2:
		return tracert.FormatMTR
	default:
		return tracert.FormatLinux
	}
}

// VolunteerEnv assembles the suite drivers for one source country's
// primary volunteer.
func VolunteerEnv(w *World, cc string) (core.Env, core.Config, error) {
	vol, ok := w.Volunteers[cc]
	if !ok {
		return core.Env{}, core.Config{}, fmt.Errorf("gamma: no volunteer in %s", cc)
	}
	return VolunteerEnvFor(w, vol)
}

// VolunteerEnvFor assembles the suite drivers for any volunteer — primary
// or secondary (worlds built with SecondaryVantages recruit two per
// country, lifting the paper's single-ISP limitation).
func VolunteerEnvFor(w *World, vol *worldgen.Volunteer) (core.Env, core.Config, error) {
	cc := vol.Country
	bcfg := browser.DefaultConfig(w.Seed, vol.VantageID)
	bcfg.Country = cc
	bcfg.LoadFailureProb = vol.LoadFailureProb
	bcfg.Pages = w.Pages
	env := core.Env{
		Browser: simBrowser{b: browser.New(w.Web, bcfg)},
		Resolver: simResolver{dns: w.DNS, client: dnssim.Client{
			Country: cc, City: vol.City,
		}},
		Clock: core.StudyClock(),
	}
	if !vol.TracerouteOptOut {
		env.Prober = &simProber{
			net:       w.Net,
			vantageID: vol.VantageID,
			format:    volunteerOS(w.Seed, cc),
		}
	}

	optOuts := make(map[string]bool, len(vol.OptOutSites))
	for _, d := range vol.OptOutSites {
		optOuts[d] = true
	}
	cfg := core.Config{
		VolunteerID:       vol.VantageID,
		Country:           cc,
		City:              vol.City.ID(),
		VolunteerIP:       vol.Addr.String(),
		OptOutSites:       optOuts,
		TracerouteEnabled: !vol.TracerouteOptOut,
		Parallelism:       1, // the study ran volunteers single-threaded
	}
	return env, cfg, nil
}

// RunVolunteer executes Gamma for one country against its selected
// targets, returning the dataset the volunteer would upload.
func RunVolunteer(ctx context.Context, w *World, cc string, sel Selection) (*Dataset, error) {
	vol, ok := w.Volunteers[cc]
	if !ok {
		return nil, fmt.Errorf("gamma: no volunteer in %s", cc)
	}
	return RunVolunteerAs(ctx, w, vol, sel)
}

// RunVolunteerAs executes Gamma as a specific volunteer.
func RunVolunteerAs(ctx context.Context, w *World, vol *worldgen.Volunteer, sel Selection) (*Dataset, error) {
	return RunVolunteerSession(ctx, w, vol, sel, "")
}

// RunVolunteerSession executes Gamma as a volunteer under a session tag:
// distinct tags draw different ad rotations and load-failure outcomes,
// modelling repeated visits (the paper recommends multiple runs per site
// to smooth single-visit variability).
func RunVolunteerSession(ctx context.Context, w *World, vol *worldgen.Volunteer, sel Selection, session string) (*Dataset, error) {
	env, cfg, err := VolunteerEnvFor(w, vol)
	if err != nil {
		return nil, err
	}
	if session != "" {
		bcfg := browser.DefaultConfig(w.Seed, vol.VantageID+"/"+session)
		bcfg.Country = vol.Country
		bcfg.LoadFailureProb = vol.LoadFailureProb
		env.Browser = simBrowser{b: browser.New(w.Web, bcfg)}
		cfg.VolunteerID = vol.VantageID + "/" + session
	}
	cfg.Targets = sel.Targets()
	suite, err := core.New(cfg, env)
	if err != nil {
		return nil, err
	}
	return suite.Run(ctx)
}

// PipelineEnv derives the Box-2 environment from a world.
func PipelineEnv(w *World) pipeline.Env {
	regional := make(map[string]*filterlist.Engine, len(w.RegionalLists))
	for cc, l := range w.RegionalLists {
		regional[cc] = filterlist.NewEngine(l)
	}
	return pipeline.Env{
		Reg:           w.Registry,
		Net:           w.Net,
		IPMap:         w.IPMap,
		Ref:           w.RefLat,
		Mesh:          w.Mesh,
		Lists:         filterlist.NewEngine(w.EasyList, w.EasyPrivacy),
		RegionalLists: regional,
		Orgs:          w.Orgs,
	}
}

// Analyze runs the Box-2 pipeline over volunteer datasets. Countries are
// analyzed concurrently over GOMAXPROCS workers; use AnalyzeWithWorkers to
// bound or serialize the pool. The result is byte-identical for any worker
// count (see internal/pipeline's golden/differential harness).
func Analyze(w *World, datasets []*Dataset) (*Result, error) {
	return AnalyzeWithWorkers(w, datasets, 0)
}

// AnalyzeWithWorkers runs Box 2 with a bounded analysis worker pool;
// workers <= 0 uses runtime.GOMAXPROCS(0), 1 forces a serial analysis.
func AnalyzeWithWorkers(w *World, datasets []*Dataset, workers int) (*Result, error) {
	env := PipelineEnv(w)
	env.AnalysisWorkers = workers
	return pipeline.Process(env, datasets)
}

// Study bundles a complete end-to-end run.
type Study struct {
	World      *World
	Selections map[string]Selection
	Datasets   map[string]*Dataset
	Result     *Result
	// Sched snapshots the campaign scheduler's counters (volunteer
	// attempts, retries, latencies) for the run that produced this study.
	Sched sched.Stats
}

// RunStudy builds a world, selects targets, runs every volunteer, and
// analyzes the combined data — the entire paper in one call.
//
// Volunteers run concurrently through the campaign scheduler; on the
// first fatal volunteer error the remaining work is cancelled via a
// derived context and every error observed is reported through
// errors.Join. Use RunStudyWithOptions for retries, fault injection,
// checkpointing, and partial-result campaigns.
func RunStudy(ctx context.Context, seed uint64) (*Study, error) {
	study, err := RunStudyWithOptions(ctx, seed, StudyOptions{})
	if err != nil {
		return nil, err
	}
	return study, nil
}

// StudyOptions tunes a study campaign (RunStudyWithOptions). The zero
// value reproduces RunStudy: one attempt per volunteer, GOMAXPROCS
// workers, fail-fast.
type StudyOptions struct {
	// Workers bounds concurrently running volunteers; <= 0 uses
	// runtime.GOMAXPROCS(0). The result is byte-identical for any value:
	// every stochastic draw is keyed by stable strings, never by
	// scheduling order.
	Workers int
	// AnalysisWorkers bounds concurrent per-country analyses in Box 2
	// (pipeline.Env.AnalysisWorkers): <= 0 uses runtime.GOMAXPROCS(0),
	// 1 forces a serial analysis. Like Workers, the analyzed result is
	// byte-identical for every value.
	AnalysisWorkers int
	// Retry re-runs a failed volunteer (zero value: single attempt).
	// Each retry resumes the volunteer's dataset, so completed targets
	// are never re-measured.
	Retry sched.RetryPolicy
	// DriverRetry is passed to every volunteer's suite: individual driver
	// calls that report transient faults (driver.Fault — e.g. from the
	// sched.Flaky* decorators) are retried at this policy before a target
	// or volunteer is considered failed.
	DriverRetry sched.RetryPolicy
	// VolunteerTimeout bounds one volunteer attempt (0 = unbounded).
	VolunteerTimeout time.Duration
	// ContinuePastFailures keeps the campaign running when a volunteer
	// fails terminally: the study analyzes every completed dataset and
	// the returned error joins one error per failed volunteer. When
	// false, the first fatal error cancels outstanding volunteers.
	ContinuePastFailures bool
	// FaultRate, when positive, wraps every volunteer's drivers in the
	// sched.FlakyBrowser/FlakyResolver/FlakyProber decorators at this
	// transient-failure rate — the campaign-level chaos harness. Draws
	// are keyed by the study seed, so fault patterns reproduce exactly.
	FaultRate float64
	// Clock paces volunteer retries/timeouts and is forwarded to every
	// suite's scheduler. Nil uses the wall clock; tests inject
	// sched.NewFakeClock so nothing sleeps for real.
	Clock sched.Clock
	// CheckpointDir, when set, persists each volunteer's dataset through
	// core.SaveDataset after every attempt and resumes from an existing
	// checkpoint on start — the §3.3 "resume from where it was last
	// stopped" behaviour at campaign scope. Files are <dir>/<cc>.json.
	CheckpointDir string
	// EnvHook, when set, rewrites a volunteer's drivers before the suite
	// is built (after FaultRate decoration). Tests use it to make
	// specific volunteers fail permanently.
	EnvHook func(cc string, env core.Env) core.Env
	// DisableCaches builds the world with every measurement-plane memo
	// off (worldgen.Options.DisableCaches): the reference mode the
	// cached-vs-uncached equivalence test compares against byte for byte.
	DisableCaches bool
}

// RunStudyWithOptions runs the full study as a fault-tolerant campaign:
// volunteers are scheduled over a bounded worker pool with deterministic
// retry/backoff, failed volunteers resume rather than restart, and
// completed datasets are kept even when others fail.
//
// The returned *Study is non-nil whenever the world was built: on error it
// carries every completed dataset (and, with ContinuePastFailures, the
// analysis of the surviving corpus). The error joins one entry per failed
// volunteer, each naming its country.
//
// Determinism invariant: identical seeds produce byte-identical datasets
// regardless of Workers and regardless of injected transient faults, as
// long as retries eventually succeed — every stochastic draw (world,
// measurement, fault, backoff) is keyed by stable strings, and the
// simulated drivers are stateless per call.
func RunStudyWithOptions(ctx context.Context, seed uint64, opts StudyOptions) (*Study, error) {
	w, err := worldgen.BuildWithOptions(seed, worldgen.Options{DisableCaches: opts.DisableCaches})
	if err != nil {
		return nil, err
	}
	sels, err := SelectTargets(w)
	if err != nil {
		return nil, err
	}
	study := &Study{World: w, Selections: sels, Datasets: make(map[string]*Dataset)}
	countries := w.SourceCountries()
	units := make([]sched.Unit[*Dataset], len(countries))
	for i, cc := range countries {
		cc := cc
		units[i] = sched.Unit[*Dataset]{
			ID:  "volunteer/" + cc,
			Run: volunteerUnit(w, cc, sels[cc], seed, opts),
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := sched.New[*Dataset](sched.Options{
		Workers:  workers,
		Timeout:  opts.VolunteerTimeout,
		Retry:    opts.Retry,
		Seed:     seed,
		Clock:    opts.Clock,
		FailFast: !opts.ContinuePastFailures,
	})
	results, runErr := pool.Run(ctx, units)
	study.Sched = pool.Stats()

	var errs []error
	var all []*Dataset
	for i, r := range results {
		cc := countries[i]
		switch {
		case r.Err == nil:
			study.Datasets[cc] = r.Value
			all = append(all, r.Value)
		case !r.Skipped && !errors.Is(r.Err, context.Canceled):
			errs = append(errs, fmt.Errorf("gamma: volunteer %s: %w", cc, r.Err))
		}
	}
	if runErr != nil {
		errs = append(errs, runErr)
	}
	if len(errs) > 0 && !opts.ContinuePastFailures {
		// Fail-fast campaigns keep completed datasets but skip analysis.
		return study, errors.Join(errs...)
	}
	if len(all) > 0 {
		res, aerr := AnalyzeWithWorkers(w, all, opts.AnalysisWorkers)
		if aerr != nil {
			errs = append(errs, aerr)
		} else {
			study.Result = res
		}
	}
	return study, errors.Join(errs...)
}

// volunteerUnit builds the campaign work function for one country. State
// (drivers, suite, dataset) persists across retry attempts so fault
// decorators keep their call counters and resumes skip completed targets.
func volunteerUnit(w *World, cc string, sel Selection, seed uint64, opts StudyOptions) func(context.Context) (*Dataset, error) {
	var (
		mu      sync.Mutex
		inited  bool
		initErr error
		suite   *core.Suite
		ds      *Dataset
		ckpt    string
	)
	return func(ctx context.Context) (*Dataset, error) {
		mu.Lock()
		defer mu.Unlock()
		if !inited {
			inited = true
			initErr = func() error {
				vol, ok := w.Volunteers[cc]
				if !ok {
					return fmt.Errorf("gamma: no volunteer in %s", cc)
				}
				env, cfg, err := VolunteerEnvFor(w, vol)
				if err != nil {
					return err
				}
				if opts.FaultRate > 0 {
					env = FaultyEnv(env, seed, "volunteer/"+cc, opts.FaultRate)
				}
				if opts.EnvHook != nil {
					env = opts.EnvHook(cc, env)
				}
				if opts.Clock != nil {
					env.Timer = opts.Clock
				}
				cfg.Targets = sel.Targets()
				cfg.DriverRetry = opts.DriverRetry
				cfg.SchedSeed = seed
				suite, err = core.New(cfg, env)
				if err != nil {
					return err
				}
				if opts.CheckpointDir != "" {
					ckpt = filepath.Join(opts.CheckpointDir, cc+".json")
					if loaded, err := core.LoadDataset(ckpt); err == nil && loaded.VolunteerID == cfg.VolunteerID {
						ds = loaded
					}
				}
				if ds == nil {
					ds = suite.NewDataset()
				}
				return nil
			}()
		}
		if initErr != nil {
			// Configuration problems are terminal; no retry can fix them.
			return nil, sched.Permanent(initErr)
		}
		err := suite.Resume(ctx, ds)
		if ckpt != "" {
			// Persist progress even on failure so a later attempt — or a
			// whole later campaign — resumes instead of restarting.
			if serr := core.SaveDataset(ckpt, ds); err == nil && serr != nil {
				err = serr
			}
		}
		if err != nil {
			return nil, err
		}
		return ds, nil
	}
}

// FaultyEnv wraps an environment's drivers in the sched fault-injection
// decorators at the given transient-failure rate. scope must be unique per
// volunteer so concurrent volunteers draw independent fault streams.
func FaultyEnv(env core.Env, seed uint64, scope string, rate float64) core.Env {
	env.Browser = sched.NewFlakyBrowser(env.Browser, seed, scope, rate)
	env.Resolver = sched.NewFlakyResolver(env.Resolver, seed, scope, rate)
	if env.Prober != nil {
		env.Prober = sched.NewFlakyProber(env.Prober, seed, scope, rate)
	}
	return env
}

// SiteKindOf reports a domain's site kind in the world ("regional",
// "government", "global"), for reporting.
func SiteKindOf(w *World, domain string) (string, bool) {
	site, ok := w.Web.Site(strings.ToLower(domain))
	if !ok {
		return "", false
	}
	return site.Kind.String(), true
}

// WebSiteCategory exposes a site's category for reporting.
func WebSiteCategory(w *World, domain string) (string, bool) {
	site, ok := w.Web.Site(domain)
	if !ok {
		return "", false
	}
	return site.Category, true
}

var _ = websim.Kind(0) // keep websim linked for documentation references
