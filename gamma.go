// Package gamma is the public API of the Gamma web-tracking measurement
// suite — a full reproduction of "Where in the World Are My Trackers?
// Mapping Web Tracking Flow Across Diverse Geographic Regions" (IMC 2025).
//
// The package wires three layers together:
//
//   - a deterministic synthetic world (countries, tracker organizations
//     with GeoDNS steering, a web of regional and government sites, an
//     Atlas-style probe mesh, and geolocation databases with realistic
//     errors), built by NewWorld;
//   - the Gamma measurement suite itself (browser sessions, DNS/rDNS
//     collection, normalized traceroutes), run per volunteer by
//     RunVolunteer;
//   - the Box-2 analysis pipeline (multi-constraint geolocation, tracker
//     identification, flow analysis), run by Analyze.
//
// RunStudy executes the entire study across all 23 source countries:
//
//	study, err := gamma.RunStudy(context.Background(), 42)
//	if err != nil { ... }
//	fmt.Println(study.Result.Funnel.Trackers)
//
// The drivers behind the suite are interfaces (core.Browser, core.Resolver,
// core.Prober); a field deployment would implement them with Selenium, the
// system resolver and the OS traceroute tools, exactly as the paper's tool
// does.
package gamma

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"strings"
	"sync"

	"github.com/gamma-suite/gamma/internal/browser"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/dnssim"
	"github.com/gamma-suite/gamma/internal/filterlist"
	"github.com/gamma-suite/gamma/internal/netsim"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/rng"
	"github.com/gamma-suite/gamma/internal/targets"
	"github.com/gamma-suite/gamma/internal/tracert"
	"github.com/gamma-suite/gamma/internal/websim"
	"github.com/gamma-suite/gamma/internal/worldgen"
)

// World is the synthetic study environment. See worldgen for its contents.
type World = worldgen.World

// Dataset is a volunteer's uploaded recording.
type Dataset = core.Dataset

// Result is the analyzed study corpus.
type Result = pipeline.Result

// Selection is a country's chosen target list.
type Selection = targets.Selection

// NewWorld builds the calibrated synthetic world for a seed. Identical
// seeds produce identical worlds.
func NewWorld(seed uint64) (*World, error) { return worldgen.Build(seed) }

// SelectTargets runs the §3.2 target-selection method for every source
// country: top-50 regional sites from the ranking sources (with adult and
// banned sites removed) plus up to 50 government sites from the
// Tranco-style list with the search fallback.
func SelectTargets(w *World) (map[string]Selection, error) {
	src := targets.Sources{
		Similarweb: w.Rankings.Similarweb,
		Semrush:    w.Rankings.Semrush,
		Ahrefs:     w.Rankings.Ahrefs,
	}
	out := make(map[string]Selection, len(w.SourceCountries()))
	for _, cc := range w.SourceCountries() {
		banned := map[string]bool{}
		for _, d := range w.BannedSites[cc] {
			banned[d] = true
		}
		exclude := func(domain string) bool {
			if banned[domain] {
				return true
			}
			site, ok := w.Web.Site(domain)
			return ok && site.Category == "adult"
		}
		sel, err := targets.Select(cc, src, w.Tranco, w.GovIndex[cc], exclude)
		if err != nil {
			return nil, fmt.Errorf("gamma: select targets for %s: %w", cc, err)
		}
		out[cc] = sel
	}
	return out, nil
}

// --- simulation-backed drivers ---

type simBrowser struct{ b *browser.Browser }

func (s simBrowser) Load(_ context.Context, site string) (core.PageRecord, error) {
	pl := s.b.Load(site)
	rec := core.PageRecord{
		Site:       pl.SiteDomain,
		URL:        pl.SiteURL,
		OK:         pl.OK,
		FailReason: pl.FailReason,
		DurationMs: pl.DurationMs,
	}
	for _, r := range pl.Requests {
		rec.Requests = append(rec.Requests, core.RequestRecord{
			URL: r.URL, Domain: r.Domain, Type: r.Type,
			Initiator: r.Initiator, Blocked: r.Blocked,
			ThirdParty: r.ThirdParty, SetCookies: r.SetCookies,
		})
	}
	return rec, nil
}

type simResolver struct {
	dns    *dnssim.Server
	client dnssim.Client
}

func (s simResolver) Resolve(_ context.Context, domain string) (netip.Addr, error) {
	return s.dns.Resolve(domain, s.client)
}

// ResolveChain exposes CNAME chains (core.ChainResolver).
func (s simResolver) ResolveChain(_ context.Context, domain string) (netip.Addr, []string, error) {
	return s.dns.ResolveChain(domain, s.client)
}

func (s simResolver) Reverse(_ context.Context, addr netip.Addr) (string, bool) {
	return s.dns.ReversePTR(addr)
}

// simProber launches simulated traceroutes and round-trips them through
// the OS-specific output format the volunteer's machine would produce,
// exercising the tracert portability layer on the hot path.
type simProber struct {
	net       *netsim.Network
	vantageID string
	format    tracert.Format
}

func (s simProber) Traceroute(_ context.Context, dst netip.Addr) (tracert.Normalized, error) {
	res, err := s.net.Traceroute(s.vantageID, dst)
	if err != nil {
		return tracert.Normalized{}, err
	}
	text, err := tracert.Render(res, s.format)
	if err != nil {
		return tracert.Normalized{}, err
	}
	return tracert.Parse(text)
}

// volunteerOS picks the probe-output dialect for a volunteer's machine:
// Windows tracert, a scapy-based prober, mtr, or plain traceroute.
func volunteerOS(seed uint64, cc string) tracert.Format {
	r := rng.New(seed, "volunteer-os", cc)
	switch r.IntN(4) {
	case 0:
		return tracert.FormatWindows
	case 1:
		return tracert.FormatScapy
	case 2:
		return tracert.FormatMTR
	default:
		return tracert.FormatLinux
	}
}

// VolunteerEnv assembles the suite drivers for one source country's
// primary volunteer.
func VolunteerEnv(w *World, cc string) (core.Env, core.Config, error) {
	vol, ok := w.Volunteers[cc]
	if !ok {
		return core.Env{}, core.Config{}, fmt.Errorf("gamma: no volunteer in %s", cc)
	}
	return VolunteerEnvFor(w, vol)
}

// VolunteerEnvFor assembles the suite drivers for any volunteer — primary
// or secondary (worlds built with SecondaryVantages recruit two per
// country, lifting the paper's single-ISP limitation).
func VolunteerEnvFor(w *World, vol *worldgen.Volunteer) (core.Env, core.Config, error) {
	cc := vol.Country
	bcfg := browser.DefaultConfig(w.Seed, vol.VantageID)
	bcfg.Country = cc
	bcfg.LoadFailureProb = vol.LoadFailureProb
	env := core.Env{
		Browser: simBrowser{b: browser.New(w.Web, bcfg)},
		Resolver: simResolver{dns: w.DNS, client: dnssim.Client{
			Country: cc, City: vol.City,
		}},
		Clock: core.StudyClock(),
	}
	if !vol.TracerouteOptOut {
		env.Prober = simProber{
			net:       w.Net,
			vantageID: vol.VantageID,
			format:    volunteerOS(w.Seed, cc),
		}
	}

	optOuts := make(map[string]bool, len(vol.OptOutSites))
	for _, d := range vol.OptOutSites {
		optOuts[d] = true
	}
	cfg := core.Config{
		VolunteerID:       vol.VantageID,
		Country:           cc,
		City:              vol.City.ID(),
		VolunteerIP:       vol.Addr.String(),
		OptOutSites:       optOuts,
		TracerouteEnabled: !vol.TracerouteOptOut,
		Parallelism:       1, // the study ran volunteers single-threaded
	}
	return env, cfg, nil
}

// RunVolunteer executes Gamma for one country against its selected
// targets, returning the dataset the volunteer would upload.
func RunVolunteer(ctx context.Context, w *World, cc string, sel Selection) (*Dataset, error) {
	vol, ok := w.Volunteers[cc]
	if !ok {
		return nil, fmt.Errorf("gamma: no volunteer in %s", cc)
	}
	return RunVolunteerAs(ctx, w, vol, sel)
}

// RunVolunteerAs executes Gamma as a specific volunteer.
func RunVolunteerAs(ctx context.Context, w *World, vol *worldgen.Volunteer, sel Selection) (*Dataset, error) {
	return RunVolunteerSession(ctx, w, vol, sel, "")
}

// RunVolunteerSession executes Gamma as a volunteer under a session tag:
// distinct tags draw different ad rotations and load-failure outcomes,
// modelling repeated visits (the paper recommends multiple runs per site
// to smooth single-visit variability).
func RunVolunteerSession(ctx context.Context, w *World, vol *worldgen.Volunteer, sel Selection, session string) (*Dataset, error) {
	env, cfg, err := VolunteerEnvFor(w, vol)
	if err != nil {
		return nil, err
	}
	if session != "" {
		bcfg := browser.DefaultConfig(w.Seed, vol.VantageID+"/"+session)
		bcfg.Country = vol.Country
		bcfg.LoadFailureProb = vol.LoadFailureProb
		env.Browser = simBrowser{b: browser.New(w.Web, bcfg)}
		cfg.VolunteerID = vol.VantageID + "/" + session
	}
	cfg.Targets = sel.Targets()
	suite, err := core.New(cfg, env)
	if err != nil {
		return nil, err
	}
	return suite.Run(ctx)
}

// PipelineEnv derives the Box-2 environment from a world.
func PipelineEnv(w *World) pipeline.Env {
	regional := make(map[string]*filterlist.Engine, len(w.RegionalLists))
	for cc, l := range w.RegionalLists {
		regional[cc] = filterlist.NewEngine(l)
	}
	return pipeline.Env{
		Reg:           w.Registry,
		Net:           w.Net,
		IPMap:         w.IPMap,
		Ref:           w.RefLat,
		Mesh:          w.Mesh,
		Lists:         filterlist.NewEngine(w.EasyList, w.EasyPrivacy),
		RegionalLists: regional,
		Orgs:          w.Orgs,
	}
}

// Analyze runs the Box-2 pipeline over volunteer datasets.
func Analyze(w *World, datasets []*Dataset) (*Result, error) {
	return pipeline.Process(PipelineEnv(w), datasets)
}

// Study bundles a complete end-to-end run.
type Study struct {
	World      *World
	Selections map[string]Selection
	Datasets   map[string]*Dataset
	Result     *Result
}

// RunStudy builds a world, selects targets, runs every volunteer, and
// analyzes the combined data — the entire paper in one call.
func RunStudy(ctx context.Context, seed uint64) (*Study, error) {
	w, err := NewWorld(seed)
	if err != nil {
		return nil, err
	}
	sels, err := SelectTargets(w)
	if err != nil {
		return nil, err
	}
	study := &Study{World: w, Selections: sels, Datasets: make(map[string]*Dataset)}
	// Volunteers are independent; run them concurrently. All world
	// components are read-only (or internally locked) during measurement,
	// and every stochastic draw is keyed by stable strings, so the result
	// is identical to the sequential run.
	countries := w.SourceCountries()
	results := make([]*Dataset, len(countries))
	errs := make([]error, len(countries))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, cc := range countries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, cc string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = RunVolunteer(ctx, w, cc, sels[cc])
		}(i, cc)
	}
	wg.Wait()
	var all []*Dataset
	for i, cc := range countries {
		if errs[i] != nil {
			return nil, fmt.Errorf("gamma: volunteer %s: %w", cc, errs[i])
		}
		study.Datasets[cc] = results[i]
		all = append(all, results[i])
	}
	study.Result, err = Analyze(w, all)
	if err != nil {
		return nil, err
	}
	return study, nil
}

// SiteKindOf reports a domain's site kind in the world ("regional",
// "government", "global"), for reporting.
func SiteKindOf(w *World, domain string) (string, bool) {
	site, ok := w.Web.Site(strings.ToLower(domain))
	if !ok {
		return "", false
	}
	return site.Kind.String(), true
}

// WebSiteCategory exposes a site's category for reporting.
func WebSiteCategory(w *World, domain string) (string, bool) {
	site, ok := w.Web.Site(domain)
	if !ok {
		return "", false
	}
	return site.Category, true
}

var _ = websim.Kind(0) // keep websim linked for documentation references
