// Govaudit reproduces the study's government-website angle (RQ1): citizens
// often have no alternative to official portals, so trackers there expose
// real users. The example measures a set of countries, then reports — per
// country — the share of government sites embedding foreign trackers, the
// worst offenders, and which organizations receive the data.
//
//	go run ./examples/govaudit            # default country sample
//	go run ./examples/govaudit UG NZ AE   # specific countries
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
)

func main() {
	countries := []string{"NZ", "UG", "AE", "AU", "RU"}
	if len(os.Args) > 1 {
		countries = os.Args[1:]
	}

	world, err := gamma.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	selections, err := gamma.SelectTargets(world)
	if err != nil {
		log.Fatal(err)
	}

	var datasets []*core.Dataset
	for _, cc := range countries {
		sel, ok := selections[cc]
		if !ok {
			log.Fatalf("no volunteer in %q; choices: %v", cc, world.SourceCountries())
		}
		ds, err := gamma.RunVolunteer(context.Background(), world, cc, sel)
		if err != nil {
			log.Fatal(err)
		}
		datasets = append(datasets, ds)
	}
	result, err := gamma.Analyze(world, datasets)
	if err != nil {
		log.Fatal(err)
	}

	for _, cc := range countries {
		cr := result.Countries[cc]
		type offender struct {
			site  string
			count int
			dests map[string]bool
			orgs  map[string]bool
		}
		var offenders []offender
		govTotal, govTracked := 0, 0
		for _, s := range cr.Sites {
			if s.Kind != core.KindGovernment || !s.LoadOK {
				continue
			}
			govTotal++
			nl := s.NonLocalTrackers()
			if len(nl) == 0 {
				continue
			}
			govTracked++
			o := offender{site: s.Site, count: len(nl), dests: map[string]bool{}, orgs: map[string]bool{}}
			for _, d := range nl {
				o.dests[d.DestCountry] = true
				if d.Org != "" {
					o.orgs[d.Org] = true
				}
			}
			offenders = append(offenders, o)
		}
		sort.Slice(offenders, func(i, j int) bool { return offenders[i].count > offenders[j].count })

		fmt.Printf("\n=== %s: %d/%d government sites embed foreign trackers ===\n", cc, govTracked, govTotal)
		for i, o := range offenders {
			if i >= 5 {
				fmt.Printf("  ... and %d more\n", len(offenders)-5)
				break
			}
			fmt.Printf("  %-28s %2d foreign tracker domains -> %s (orgs: %s)\n",
				o.site, o.count, keys(o.dests), keys(o.orgs))
		}
	}
}

func keys(m map[string]bool) string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	s := ""
	for i, k := range out {
		if i > 0 {
			s += ", "
		}
		s += k
	}
	return s
}
