// Multivantage lifts the study's stated limitation of "a single ISP in
// each country" (§7 Limitations): it builds a world where every country
// recruits a second volunteer on a different ISP (and different city where
// available), measures a country from both vantage points, and compares
// what each sees — including the middlebox asymmetry where one ISP filters
// traceroute probes and the other does not (Australia in the study).
//
//	go run ./examples/multivantage [country]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/worldgen"
)

func main() {
	country := "AU"
	if len(os.Args) > 1 {
		country = os.Args[1]
	}
	ctx := context.Background()

	world, err := worldgen.BuildWithOptions(42, worldgen.Options{SecondaryVantages: true})
	if err != nil {
		log.Fatal(err)
	}
	selections, err := gamma.SelectTargets(world)
	if err != nil {
		log.Fatal(err)
	}
	sel := selections[country]

	primary := world.Volunteers[country]
	secondary := world.SecondaryVolunteers[country]
	if primary == nil || secondary == nil {
		log.Fatalf("no volunteer pair in %q", country)
	}

	measure := func(vol *worldgen.Volunteer) (*gamma.Result, *core.Dataset) {
		ds, err := gamma.RunVolunteerAs(ctx, world, vol, sel)
		if err != nil {
			log.Fatal(err)
		}
		res, err := gamma.Analyze(world, []*core.Dataset{ds})
		if err != nil {
			log.Fatal(err)
		}
		return res, ds
	}

	res1, _ := measure(primary)
	res2, _ := measure(secondary)

	stats := func(cr *gamma.Result, cc string) (loaded, hit, nl int, origin string) {
		cr2 := cr.Countries[cc]
		for _, s := range cr2.Sites {
			if !s.LoadOK {
				continue
			}
			loaded++
			n := len(s.NonLocalTrackers())
			if n > 0 {
				hit++
			}
			nl += n
		}
		return loaded, hit, nl, cr2.TraceOrigin
	}

	l1, h1, n1, o1 := stats(res1, country)
	l2, h2, n2, o2 := stats(res2, country)
	fmt.Printf("two vantage points in %s, same target list (%d sites)\n\n", country, len(sel.Targets()))
	fmt.Printf("  %-10s %-22s %-10s %8s %14s %12s %s\n", "volunteer", "city", "ISP(ASN)", "loaded", "tracking sites", "nl domains", "trace origin")
	fmt.Printf("  %-10s %-22s AS%-8d %8d %14d %12d %s\n", "primary", primary.City.ID(), primary.ASN, l1, h1, n1, o1)
	fmt.Printf("  %-10s %-22s AS%-8d %8d %14d %12d %s\n", "secondary", secondary.City.ID(), secondary.ASN, l2, h2, n2, o2)

	fmt.Println()
	if o1 != o2 {
		fmt.Println("=> middlebox asymmetry: one ISP filters probes (Atlas substitution")
		fmt.Println("   kicks in), the other measures natively — recruiting a second")
		fmt.Println("   volunteer per country removes a whole failure mode.")
	}
	diff := h1 - h2
	if diff < 0 {
		diff = -diff
	}
	fmt.Printf("vantage disagreement on tracking sites: %d site(s) — GeoDNS answers\n", diff)
	fmt.Println("depend on the querying network, which is why the paper insists on")
	fmt.Println("in-country, real-user vantage points rather than VPNs or proxies.")
}
