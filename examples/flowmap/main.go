// Flowmap reproduces the study's RQ2 flow analysis (Figures 5 and 6): it
// runs the full study, then maps where tracking data travels — the
// destination-country hubs, the single-source destinations the paper
// highlights (New Zealand feeding Australia, Thailand feeding Malaysia,
// Russia feeding Finland), and the continent-level picture in which Europe
// is the only universal sink and Africa receives no inward flow at all.
//
//	go run ./examples/flowmap
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/report"
)

func main() {
	fmt.Fprintln(os.Stderr, "running the full 23-country study (seed 42)...")
	study, err := gamma.RunStudy(context.Background(), 42)
	if err != nil {
		log.Fatal(err)
	}
	res := study.Result

	shares := analysis.Fig5DestShares(res)
	flows := analysis.Fig5CountryFlows(res)
	report.Fig5(os.Stdout, shares[:min(12, len(shares))], flows, 12)

	// Single-source destinations: countries that receive almost all their
	// flow from one neighbour.
	fmt.Println("\nsingle-source destinations (>=80% of sites from one country):")
	perDest := map[string]map[string]int{}
	for _, f := range flows {
		if perDest[f.Dest] == nil {
			perDest[f.Dest] = map[string]int{}
		}
		perDest[f.Dest][f.Source] += f.Sites
	}
	dests := make([]string, 0, len(perDest))
	for d := range perDest {
		dests = append(dests, d)
	}
	sort.Strings(dests)
	for _, dest := range dests {
		srcs := perDest[dest]
		total, top, topSrc := 0, 0, ""
		for src, n := range srcs {
			total += n
			if n > top || (n == top && src < topSrc) {
				top, topSrc = n, src
			}
		}
		if total >= 10 && float64(top) >= 0.8*float64(total) {
			fmt.Printf("  %s <- %s (%d of %d sites)\n", dest, topSrc, top, total)
		}
	}

	fmt.Println()
	cont := analysis.Fig6ContinentFlows(res, study.World.Registry)
	report.Fig6(os.Stdout, cont)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
