// Browsers exercises Gamma's multi-browser support (§3: the suite "supports
// running measurements across major browsers, including Chrome, Firefox,
// and privacy-focused Brave"). It loads one country's target sites under
// Chrome (no blocking) and under Brave (EasyList/EasyPrivacy blocking) and
// compares the tracker exposure each browser actually permits — the
// user-facing recommendation in §7 quantified.
//
//	go run ./examples/browsers [country]
package main

import (
	"fmt"
	"log"
	"os"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/browser"
	"github.com/gamma-suite/gamma/internal/filterlist"
)

func main() {
	country := "QA"
	if len(os.Args) > 1 {
		country = os.Args[1]
	}

	world, err := gamma.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	selections, err := gamma.SelectTargets(world)
	if err != nil {
		log.Fatal(err)
	}
	sel, ok := selections[country]
	if !ok {
		log.Fatalf("no volunteer in %q", country)
	}
	vol := world.Volunteers[country]

	run := func(kind browser.Kind, blocker *filterlist.Engine) (loaded, trackerReqs, blocked int) {
		cfg := browser.DefaultConfig(world.Seed, vol.VantageID)
		cfg.Kind = kind
		cfg.Country = country
		cfg.Blocker = blocker
		b := browser.New(world.Web, cfg)
		for _, tg := range sel.Targets() {
			pl := b.Load(tg.Domain)
			if !pl.OK {
				continue
			}
			loaded++
			for _, r := range pl.Requests {
				if _, isTracker := world.TrackerHostnames[r.Domain]; !isTracker {
					continue
				}
				if r.Blocked {
					blocked++
				} else {
					trackerReqs++
				}
			}
		}
		return
	}

	engine := filterlist.NewEngine(world.EasyList, world.EasyPrivacy)
	chromeLoaded, chromeTrackers, _ := run(browser.Chrome, nil)
	braveLoaded, braveTrackers, braveBlocked := run(browser.Brave, engine)

	fmt.Printf("browser comparison for %s (%d targets)\n\n", country, len(sel.Targets()))
	fmt.Printf("  %-8s %8s %18s %14s\n", "browser", "loaded", "tracker requests", "blocked")
	fmt.Printf("  %-8s %8d %18d %14s\n", "chrome", chromeLoaded, chromeTrackers, "-")
	fmt.Printf("  %-8s %8d %18d %14d\n", "brave", braveLoaded, braveTrackers, braveBlocked)
	if chromeTrackers > 0 {
		cut := 100 * float64(chromeTrackers-braveTrackers) / float64(chromeTrackers)
		fmt.Printf("\nBrave's filter lists suppress %.0f%% of tracker requests — the §7\n", cut)
		fmt.Println("user recommendation (privacy-focused browsers) in numbers. Note the")
		fmt.Println("remainder: list-based blocking misses what the lists miss (§4.2).")
	}
}
