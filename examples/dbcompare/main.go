// Dbcompare reproduces the geolocation-database reliability comparison the
// paper leans on in §4.1 ("studies have shown they are not fully
// reliable"): it scores the RIPE-IPmap-style database and three
// commercial-style alternatives against the simulator's ground truth, then
// shows how many local/non-local verdicts flip when a study trusts a
// different provider — the error the multi-constraint framework exists to
// contain.
//
//	go run ./examples/dbcompare
package main

import (
	"fmt"
	"log"
	"net/netip"

	gamma "github.com/gamma-suite/gamma"
)

func main() {
	world, err := gamma.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("database      coverage   country-acc  city-acc   median-err")
	fmt.Println("------------  ---------  -----------  ---------  ----------")
	for _, acc := range gamma.CompareGeoDBs(world) {
		fmt.Printf("%-12s  %8.1f%%  %10.1f%%  %8.1f%%  %7.0f km\n",
			acc.DB, acc.CoveragePct, acc.CountryPct, acc.CityPct, acc.MedianErrKm)
	}

	// How many classification verdicts flip per provider, for one country?
	var addrs []netip.Addr
	for _, h := range world.Net.Hosts() {
		addrs = append(addrs, h.Addr)
	}
	fmt.Printf("\nlocal/non-local verdict flips vs ripe-ipmap (PK vantage, %d servers):\n", len(addrs))
	for _, name := range []string{"maxmind-sim", "dbip-sim", "ipinfo-sim"} {
		flips := gamma.ClassifyWithDB(world, "PK", world.AltDBs[name], addrs)
		fmt.Printf("  %-12s %4d flips (%.1f%%)\n", name, flips, 100*float64(flips)/float64(len(addrs)))
	}
	fmt.Println("\n=> provider choice alone moves hundreds of verdicts — why §4.1 validates")
	fmt.Println("   every non-local claim with latency, probe, and reverse-DNS constraints.")
}
