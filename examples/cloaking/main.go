// Cloaking surfaces CNAME-cloaked trackers: first-party-looking subdomains
// (metrics.<site>) that alias onto foreign tracker infrastructure. Filter
// lists cannot block them — the domain is the site's own — but the DNS
// chains Gamma records during C2 betray them, and the cross-border flow is
// exactly the kind of hidden transfer the paper's data-localization
// analysis (§7) is about.
//
//	go run ./examples/cloaking
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
)

func main() {
	world, err := gamma.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	selections, err := gamma.SelectTargets(world)
	if err != nil {
		log.Fatal(err)
	}

	countries := []string{"PK", "JO", "RW", "TH"}
	var datasets []*core.Dataset
	for _, cc := range countries {
		ds, err := gamma.RunVolunteer(context.Background(), world, cc, selections[cc])
		if err != nil {
			log.Fatal(err)
		}
		datasets = append(datasets, ds)
	}
	result, err := gamma.Analyze(world, datasets)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cloaked trackers found: %d (of %d non-local tracker domains)\n\n",
		result.Funnel.CloakedTrackers, result.Funnel.Trackers)
	fmt.Println("country  cloaked domain                      hides                        destination")
	fmt.Println("-------  ----------------------------------  ---------------------------  -----------")
	for _, cc := range countries {
		verdicts := result.Countries[cc].Verdicts
		domains := make([]string, 0, len(verdicts))
		for d := range verdicts {
			domains = append(domains, d)
		}
		sort.Strings(domains)
		for _, d := range domains {
			obs := verdicts[d]
			if !obs.Cloaked {
				continue
			}
			target := strings.TrimPrefix(obs.TrackerSource, "cname:")
			fmt.Printf("%-7s  %-34s  %-27s  %s\n", cc, obs.Domain, target, obs.DestCity)
		}
	}
	fmt.Println("\n=> every row is invisible to EasyList-style blocking (the domain is")
	fmt.Println("   first-party) yet ships user data abroad; the recorded CNAME chain")
	fmt.Println("   is what exposes it.")
}
