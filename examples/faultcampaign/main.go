// Faultcampaign: run the 23-country study through the campaign scheduler
// twice — once on a clean environment, once with 20% of driver calls
// failing transiently — and show that retries make the faulty run converge
// to the exact fault-free Result.
//
// This demonstrates the scheduler's core invariant: the seed alone decides
// the data. Worker count, injected faults, and retry timing never leak into
// a dataset, so a flaky field campaign that eventually succeeds is
// indistinguishable from a perfect one.
//
//	go run ./examples/faultcampaign
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/sched"
)

func main() {
	ctx := context.Background()
	const seed = 42

	clean, err := gamma.RunStudyWithOptions(ctx, seed, gamma.StudyOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean campaign:  %d volunteers, %d attempts, %d retries\n",
		clean.Sched.Units, clean.Sched.Attempts, clean.Sched.Retries)

	faulty, err := gamma.RunStudyWithOptions(ctx, seed, gamma.StudyOptions{
		Workers:     4,
		FaultRate:   0.2, // every browser/resolver/prober call fails with p=0.2
		DriverRetry: sched.RetryPolicy{MaxAttempts: 40},
		Retry:       sched.RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faulty campaign: %d volunteers, %d attempts, %d retries (20%% fault rate)\n",
		faulty.Sched.Units, faulty.Sched.Attempts, faulty.Sched.Retries)

	if !reflect.DeepEqual(clean.Result.Funnel, faulty.Result.Funnel) {
		log.Fatalf("funnels diverged:\nclean:  %+v\nfaulty: %+v",
			clean.Result.Funnel, faulty.Result.Funnel)
	}
	f := clean.Result.Funnel
	fmt.Printf("identical funnels: %d targets → %d non-local → %d SOL → %d rDNS → %d trackers\n",
		f.Targets, f.NonLocalClaimed, f.AfterSOL, f.AfterRDNS, f.Trackers)
	fmt.Println("faults absorbed; the seed alone decided the data")
}
