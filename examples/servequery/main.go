// Servequery demonstrates the serving layer in-process, no daemon
// required: run the study once, build an immutable query snapshot, and
// answer the questions a dashboard would ask — which countries leak the
// most, who observes a given tracker, where does the data go — straight
// from the precomputed payloads. It finishes with a hot swap to show the
// zero-downtime reload contract: the store validates the replacement
// before the atomic pointer flip, and /v1 bodies are byte-identical
// across the swap because they are pure functions of the corpus.
//
//	go run ./examples/servequery
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/serve"
)

func main() {
	fmt.Fprintln(os.Stderr, "running the full 23-country study (seed 42)...")
	study, err := gamma.RunStudy(context.Background(), 42)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := serve.Build(study.Result, study.World.Registry,
		gamma.PolicyRegistry(study.World), serve.Meta{ID: "example"})
	if err != nil {
		log.Fatal(err)
	}
	store, err := serve.NewStore(snap)
	if err != nil {
		log.Fatal(err)
	}

	// Query 1: the country listing, served from one precomputed buffer.
	var listing serve.CountryListing
	decode(store, "/v1/countries", &listing)
	fmt.Printf("snapshot serves %d countries across %d endpoints\n\n",
		listing.Count, len(snap.Endpoints()))
	fmt.Println("top countries by non-local tracker exposure:")
	rows := append([]serve.CountrySummary(nil), listing.Countries...)
	for i := 0; i < len(rows); i++ { // selection sort keeps the example dependency-free
		max := i
		for j := i + 1; j < len(rows); j++ {
			if rows[j].NonLocalTrackers > rows[max].NonLocalTrackers {
				max = j
			}
		}
		rows[i], rows[max] = rows[max], rows[i]
	}
	for _, row := range rows[:5] {
		fmt.Printf("  %s  %3d non-local trackers on %d domains (prevalence %.1f%%)\n",
			row.Code, row.NonLocalTrackers, row.UniqueDomains, row.PrevalencePct)
	}

	// Query 2: one country's profile — destinations and organizations
	// pre-joined at build time.
	cc := rows[0].Code
	var profile serve.CountryProfile
	decode(store, "/v1/countries/"+cc, &profile)
	fmt.Printf("\n%s (%s, traced from %s):\n", profile.Code, profile.Continent, profile.City)
	for i, d := range profile.Destinations {
		if i == 3 {
			break
		}
		fmt.Printf("  data flows to %s (%d tracker domains)\n", d.Country, d.Domains)
	}

	// Query 3: the tracker reverse index — who observes this domain?
	var trackers serve.TrackerListing
	decode(store, "/v1/trackers", &trackers)
	var tp serve.TrackerProfile
	decode(store, "/v1/trackers/"+trackers.Domains[0], &tp)
	fmt.Printf("\ntracker %s (org %q) observed from %d countries, hosted in %v\n",
		tp.Domain, tp.Org, len(tp.Countries), tp.DestCountries)

	// Hot swap: rebuild from the same corpus and install atomically.
	// Queries keep working throughout, and bodies do not move a byte.
	before, _ := store.Load().Body("/v1/flows")
	snap2, err := serve.Build(study.Result, study.World.Registry,
		gamma.PolicyRegistry(study.World), serve.Meta{ID: "example-reload"})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Install(snap2); err != nil {
		log.Fatal(err)
	}
	after, _ := store.Load().Body("/v1/flows")
	fmt.Printf("\nhot swap installed snapshot %q (swaps=%d); /v1/flows byte-identical: %v\n",
		store.Load().Meta().ID, store.Swaps(), bytes.Equal(before, after))
}

// decode fetches one precomputed body from the live snapshot and decodes
// it — the in-process equivalent of a GET against gammad.
func decode(store *serve.Store, path string, v any) {
	body, ok := store.Load().Body(path)
	if !ok {
		log.Fatalf("no payload for %s", path)
	}
	if err := json.Unmarshal(body, v); err != nil {
		log.Fatalf("decode %s: %v", path, err)
	}
}
