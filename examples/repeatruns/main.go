// Repeatruns addresses the study's single-visit limitation (§7: "each
// website was visited once... We recommend that future studies perform
// multiple runs to mitigate the effects of such variability"). Ad slots
// fill differently on every visit, so one visit undersamples the tracker
// population. This example measures the same country repeatedly and shows
// the cumulative tracker census growing run over run.
//
//	go run ./examples/repeatruns [country] [runs]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geoloc"
)

func main() {
	country := "QA"
	runs := 5
	if len(os.Args) > 1 {
		country = os.Args[1]
	}
	if len(os.Args) > 2 {
		if n, err := strconv.Atoi(os.Args[2]); err == nil && n > 0 {
			runs = n
		}
	}
	ctx := context.Background()

	world, err := gamma.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	selections, err := gamma.SelectTargets(world)
	if err != nil {
		log.Fatal(err)
	}
	sel := selections[country]
	vol := world.Volunteers[country]

	cumulative := map[string]bool{}
	fmt.Printf("repeated measurement of %s (%d runs over the same %d targets)\n\n",
		country, runs, len(sel.Targets()))
	fmt.Printf("  %-6s %18s %18s %12s\n", "run", "nl trackers seen", "new this run", "cumulative")
	for i := 1; i <= runs; i++ {
		ds, err := gamma.RunVolunteerSession(ctx, world, vol, sel, fmt.Sprintf("run-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		res, err := gamma.Analyze(world, []*core.Dataset{ds})
		if err != nil {
			log.Fatal(err)
		}
		thisRun := map[string]bool{}
		for _, obs := range res.Countries[country].Verdicts {
			if obs.Class == geoloc.NonLocal && obs.IsTracker {
				thisRun[obs.Domain] = true
			}
		}
		newNow := 0
		for d := range thisRun {
			if !cumulative[d] {
				cumulative[d] = true
				newNow++
			}
		}
		fmt.Printf("  %-6d %18d %18d %12d\n", i, len(thisRun), newNow, len(cumulative))
	}
	fmt.Println("\n=> every additional run surfaces trackers the previous runs missed —")
	fmt.Println("   single-visit results are a lower bound, exactly as §7 warns.")
}
