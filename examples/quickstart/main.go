// Quickstart: measure one country end to end in ~40 lines.
//
// It builds the synthetic world, selects Pakistan's target websites the way
// the study does (§3.2), runs the Gamma suite as the Pakistani volunteer
// (§3), analyzes the recording through the multi-constraint geolocation
// pipeline (§4), and prints where the country's web sends tracking data.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
)

func main() {
	const country = "PK"

	world, err := gamma.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	selections, err := gamma.SelectTargets(world)
	if err != nil {
		log.Fatal(err)
	}
	sel := selections[country]
	fmt.Printf("targets for %s: %d regional + %d government (source: %s)\n",
		country, len(sel.Regional), len(sel.Government), sel.RegionalSource)

	dataset, err := gamma.RunVolunteer(context.Background(), world, country, sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volunteer recorded %d pages (%d loaded OK)\n",
		len(dataset.Pages), dataset.LoadedOK())

	result, err := gamma.Analyze(world, []*core.Dataset{dataset})
	if err != nil {
		log.Fatal(err)
	}
	cr := result.Countries[country]
	fmt.Printf("unique domains observed: %d; retained non-local: %d; trackers: %d\n",
		len(cr.Verdicts), cr.Funnel.NonLocal, result.Funnel.Trackers)

	// Where does Pakistani tracking data go?
	dests := map[string]int{}
	for _, s := range cr.Sites {
		seen := map[string]bool{}
		for _, d := range s.NonLocalTrackers() {
			if !seen[d.DestCountry] {
				seen[d.DestCountry] = true
				dests[d.DestCountry]++
			}
		}
	}
	fmt.Println("sites sending tracking data abroad, by destination:")
	order := make([]string, 0, len(dests))
	for dest := range dests {
		order = append(order, dest)
	}
	sort.Strings(order)
	for _, dest := range order {
		fmt.Printf("  %s: %d sites\n", dest, dests[dest])
	}
}
