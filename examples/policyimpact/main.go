// Policyimpact reproduces the study's RQ5 / Table 1 analysis: does a
// country's data-localization regulation predict how much of its web
// tracking leaves the country? The example runs the full 23-country study,
// joins the measured non-local rates with each country's regulation class
// (consent-required, prior-approval, approved-countries, comparable-
// protections, none), and tests for a policy effect — finding, like the
// paper, none in the expected direction.
//
//	go run ./examples/policyimpact
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/report"
)

func main() {
	fmt.Fprintln(os.Stderr, "running the full 23-country study (seed 42)...")
	study, err := gamma.RunStudy(context.Background(), 42)
	if err != nil {
		log.Fatal(err)
	}

	prev := analysis.Fig3Prevalence(study.Result)
	rows := analysis.Table1(prev, gamma.PolicyRegistry(study.World))
	report.Table1(os.Stdout, rows)

	fmt.Println()
	means := analysis.MeanByPolicyType(rows)
	strictMean := (means["CS"] + means["PA"]) / 2
	looseMean := (means["TA"] + means["NR"]) / 2
	fmt.Printf("mean non-local rate, strict regimes (CS/PA): %.1f%%\n", strictMean)
	fmt.Printf("mean non-local rate, permissive regimes (TA/NR): %.1f%%\n", looseMean)
	if strictMean > looseMean {
		fmt.Println("=> as in the paper: stricter data-localization law does NOT mean")
		fmt.Println("   fewer foreign trackers — adherence is driven by infrastructure")
		fmt.Println("   availability (nearby data centers), not by regulation.")
	} else {
		fmt.Println("=> permissive countries show more non-local trackers in this world.")
	}
}
