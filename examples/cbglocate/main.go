// Cbglocate demonstrates the granular technical audit the paper
// recommends to policymakers (§7): instead of trusting a geolocation
// database, it actively multilaterates tracker servers from Atlas probes.
// For a sample of tracker endpoints it launches traceroutes from several
// probes, turns the cleaned delays into speed-of-light constraint discs
// (internal/cbg), and compares the estimated jurisdiction against both the
// IPmap database claim and the simulator's ground truth.
//
//	go run ./examples/cbglocate
package main

import (
	"fmt"
	"log"
	"net/netip"
	"sort"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/cbg"
	"github.com/gamma-suite/gamma/internal/dnssim"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/tracert"
)

func main() {
	world, err := gamma.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}

	// Sample tracker endpoints as seen from Pakistan.
	vol := world.Volunteers["PK"]
	client := dnssim.Client{Country: "PK", City: vol.City}
	var hostnames []string
	for h := range world.TrackerHostnames {
		hostnames = append(hostnames, h)
	}
	sort.Strings(hostnames)

	// Probes spread across regions give the tightest intersection.
	probeCities := []string{"Paris, FR", "Frankfurt, DE", "Dubai, AE", "Singapore, SG", "Ashburn, US", "Johannesburg, ZA"}

	fmt.Println("endpoint                              ipmap-claim  cbg-estimate         truth  verdict")
	shown, agree := 0, 0
	seen := map[netip.Addr]bool{}
	for _, hostname := range hostnames {
		if shown >= 12 {
			break
		}
		addr, err := world.DNS.Resolve(hostname, client)
		if err != nil || seen[addr] {
			continue
		}
		seen[addr] = true

		var ms []cbg.Measurement
		for _, cityID := range probeCities {
			city, ok := world.Registry.City(cityID)
			if !ok {
				continue
			}
			probe, ok := world.Mesh.ProbeInCountry(city.Country, city.Coord)
			if !ok {
				continue
			}
			res, err := world.Mesh.Traceroute(probe, addr)
			if err != nil || !res.Reached {
				continue
			}
			norm := tracert.FromResult(res)
			ms = append(ms, cbg.Measurement{
				Probe: probe.City.Coord,
				RTTMs: geoloc.CleanLatency(norm),
			})
		}
		if len(ms) < 3 {
			continue
		}
		est := cbg.Locate(ms, cbg.DefaultConfig())
		if !est.Feasible {
			continue
		}
		estCity, _, _ := cbg.NearestCity(est, world.Registry)
		claim, _ := world.IPMap.Lookup(addr)
		truth, _ := world.Net.HostByAddr(addr)

		verdict := "✗"
		if estCity.Country == truth.City.Country {
			verdict = "✓"
			agree++
		}
		shown++
		fmt.Printf("%-36s  %-11s  %-19s  %-5s  %s (r=%.0fkm, %d probes)\n",
			hostname, claim.Country, estCity.ID(), truth.City.Country, verdict, est.RadiusKm, len(ms))
	}
	fmt.Printf("\nCBG matched the true hosting country for %d/%d sampled endpoints\n", agree, shown)
	fmt.Println("(active multilateration needs no database — exactly the audit §7 proposes)")
}
