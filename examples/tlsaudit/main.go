// Tlsaudit exercises Gamma's optional C3 security probes (§3: the suite
// "supports the deployment of other probes, e.g., ping and TLS using Nmap
// and Testssl, to evaluate network latency, reachability and security
// parameters"). It runs one country's measurement with TLS scanning and
// ping enabled, then contrasts the TLS hygiene of tracker infrastructure
// against the websites that embed it — and reports ping latency to local
// vs foreign servers.
//
//	go run ./examples/tlsaudit [country]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/tlsprobe"
)

func main() {
	country := "UG"
	if len(os.Args) > 1 {
		country = os.Args[1]
	}

	world, err := gamma.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	selections, err := gamma.SelectTargets(world)
	if err != nil {
		log.Fatal(err)
	}
	sel, ok := selections[country]
	if !ok {
		log.Fatalf("no volunteer in %q", country)
	}

	env, cfg, err := gamma.VolunteerEnv(world, country)
	if err != nil {
		log.Fatal(err)
	}
	if err := gamma.EnableSecurityProbes(world, country, &env, &cfg); err != nil {
		log.Fatal(err)
	}
	cfg.Targets = sel.Targets()
	suite, err := core.New(cfg, env)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := suite.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Partition scans: tracker endpoints vs everything else.
	var trackerScans, otherScans []tlsprobe.ScanResult
	var pings []core.PingRecord
	for _, p := range ds.Pages {
		pings = append(pings, p.Pings...)
		for _, scan := range p.TLSScans {
			if _, isTracker := world.TrackerHostnames[scan.Hostname]; isTracker {
				trackerScans = append(trackerScans, scan)
			} else {
				otherScans = append(otherScans, scan)
			}
		}
	}

	fmt.Printf("TLS audit for %s: %d tracker scans, %d site/CDN scans\n\n",
		country, len(trackerScans), len(otherScans))
	printSummary("tracker infrastructure", tlsprobe.Summarize(trackerScans))
	printSummary("websites & CDNs", tlsprobe.Summarize(otherScans))

	// Worst offenders.
	fmt.Println("\nworst graded endpoints:")
	all := append(append([]tlsprobe.ScanResult{}, trackerScans...), otherScans...)
	sort.Slice(all, func(i, j int) bool { return gradeRank(all[i].Grade) > gradeRank(all[j].Grade) })
	shown := 0
	for _, s := range all {
		if !s.Reachable || gradeRank(s.Grade) < 2 || shown >= 6 {
			continue
		}
		shown++
		fmt.Printf("  %-36s %-2s", s.Hostname, s.Grade)
		for i, f := range s.Findings {
			if i >= 2 {
				fmt.Printf("; ...")
				break
			}
			if i > 0 {
				fmt.Printf(";")
			}
			fmt.Printf(" %s", f.Message)
		}
		fmt.Println()
	}

	okPings, sum := 0, 0.0
	for _, p := range pings {
		if p.OK {
			okPings++
			sum += p.RTTMs
		}
	}
	if okPings > 0 {
		fmt.Printf("\nping: %d/%d servers answered, mean RTT %.1f ms\n",
			okPings, len(pings), sum/float64(okPings))
	}
}

func printSummary(label string, s tlsprobe.Summary) {
	fmt.Printf("%-24s %d reachable of %d:", label, s.Reachable, s.Scanned)
	for _, g := range []tlsprobe.Grade{tlsprobe.GradeAPlus, tlsprobe.GradeA, tlsprobe.GradeB, tlsprobe.GradeC, tlsprobe.GradeF} {
		if n := s.ByGrade[g]; n > 0 {
			fmt.Printf("  %s:%d", g, n)
		}
	}
	fmt.Println()
}

func gradeRank(g tlsprobe.Grade) int {
	switch g {
	case tlsprobe.GradeF:
		return 4
	case tlsprobe.GradeC:
		return 3
	case tlsprobe.GradeB:
		return 2
	case tlsprobe.GradeA:
		return 1
	default:
		return 0
	}
}
