// Lawchange runs the longitudinal experiment §8 proposes: the paper's
// Jordanian data was recorded on 2024-03-16, one day before Jordan's
// Personal Data Protection Law took effect, deliberately creating a
// baseline. This example measures Jordan in the baseline world, then in a
// counterfactual world where the law achieved full localization (every
// organization serving Jordan moved onto domestic infrastructure), and
// reports what a follow-up study would observe.
//
//	go run ./examples/lawchange [country]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	gamma "github.com/gamma-suite/gamma"
)

func main() {
	country := "JO"
	if len(os.Args) > 1 {
		country = os.Args[1]
	}
	ctx := context.Background()

	fmt.Fprintf(os.Stderr, "building baseline world (pre-law) and localized world (post-law)...\n")
	before, err := gamma.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	after, err := gamma.NewLocalizedWorld(42, country)
	if err != nil {
		log.Fatal(err)
	}

	diff, err := gamma.RunScenario(ctx, before, after, country)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("longitudinal comparison for %s (same seed, law enforced in the second world)\n\n", country)
	fmt.Printf("  sites with non-local trackers:   %6.1f%%  ->  %5.1f%%\n", diff.BeforePct, diff.AfterPct)
	fmt.Printf("  retained non-local domains:      %6d   ->  %5d\n", diff.BeforeDomains, diff.AfterDomains)
	if len(diff.Departed) > 0 {
		fmt.Printf("  destinations that lost the country's flows: %s\n", strings.Join(diff.Departed, ", "))
	}
	fmt.Println()
	if diff.AfterPct < diff.BeforePct/2 {
		fmt.Println("=> a compliant localization law is clearly visible to the methodology:")
		fmt.Println("   the follow-up measurement the paper proposes would detect it.")
	} else {
		fmt.Println("=> localization did not materially change the measurement.")
	}
}
