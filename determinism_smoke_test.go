package gamma_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/export"
)

// TestStudyDeterminismAcrossWorkerCounts is the dynamic backstop behind
// gammavet's static guarantee: the full seeded study → analyze pipeline
// runs twice with different worker counts (the GOMAXPROCS-style knobs for
// both the volunteer campaign and Box 2 analysis), and the exported JSON
// plus every CSV artifact must be byte-identical. A nondeterminism bug
// that slips past the linter — a new unsorted map iteration on an output
// path, an unkeyed random draw — fails here instead.
func TestStudyDeterminismAcrossWorkerCounts(t *testing.T) {
	const seed = 20250805
	type snapshot struct {
		study []byte
		files map[string][]byte
	}
	run := func(workers int) snapshot {
		t.Helper()
		study, err := gamma.RunStudyWithOptions(context.Background(), seed, gamma.StudyOptions{
			Workers:         workers,
			AnalysisWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(struct {
			Datasets map[string]*gamma.Dataset
			Result   *gamma.Result
		}{study.Datasets, study.Result})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		names, err := export.Artifacts(study.Result, study.World.Registry, gamma.PolicyRegistry(study.World), dir)
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			files[name] = data
		}
		return snapshot{study: blob, files: files}
	}

	serial := run(1)
	parallel := run(4)

	if !bytes.Equal(serial.study, parallel.study) {
		t.Errorf("study JSON differs between 1 and 4 workers (%d vs %d bytes)",
			len(serial.study), len(parallel.study))
	}
	if len(serial.files) == 0 {
		t.Fatal("export produced no artifacts")
	}
	names := make([]string, 0, len(serial.files))
	for name := range serial.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		other, ok := parallel.files[name]
		if !ok {
			t.Errorf("artifact %s missing from parallel run", name)
			continue
		}
		if !bytes.Equal(serial.files[name], other) {
			t.Errorf("artifact %s differs between 1 and 4 workers", name)
		}
	}
	if len(parallel.files) != len(serial.files) {
		t.Errorf("artifact count differs: %d vs %d", len(serial.files), len(parallel.files))
	}
}
