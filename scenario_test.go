package gamma_test

import (
	"context"
	"net/netip"
	"testing"

	gamma "github.com/gamma-suite/gamma"
)

func TestLocalizedWorldScenario(t *testing.T) {
	before, err := gamma.NewWorld(21)
	if err != nil {
		t.Fatal(err)
	}
	after, err := gamma.NewLocalizedWorld(21, "JO")
	if err != nil {
		t.Fatal(err)
	}
	diff, err := gamma.RunScenario(context.Background(), before, after, "JO")
	if err != nil {
		t.Fatal(err)
	}
	if diff.BeforePct < 20 {
		t.Fatalf("baseline Jordan non-local rate = %.1f%%, expected substantial", diff.BeforePct)
	}
	if diff.AfterPct > diff.BeforePct/3 {
		t.Errorf("post-localization rate = %.1f%% (before %.1f%%), expected a collapse",
			diff.AfterPct, diff.BeforePct)
	}
	if diff.AfterDomains >= diff.BeforeDomains {
		t.Errorf("non-local domains did not drop: %d -> %d", diff.BeforeDomains, diff.AfterDomains)
	}
	if len(diff.Departed) == 0 {
		t.Error("some destination countries should have lost Jordan's flows")
	}
	// A different country must be unaffected by Jordan's localization.
	other, err := gamma.RunScenario(context.Background(), before, after, "PK")
	if err != nil {
		t.Fatal(err)
	}
	if other.AfterPct < other.BeforePct*0.6 {
		t.Errorf("Pakistan rate changed drastically (%.1f%% -> %.1f%%) though only Jordan localized",
			other.BeforePct, other.AfterPct)
	}
}

func TestCompareGeoDBs(t *testing.T) {
	study := fullStudy(t)
	accs := gamma.CompareGeoDBs(study.World)
	if len(accs) != 4 { // ipmap + 3 commercial
		t.Fatalf("db comparisons = %d, want 4", len(accs))
	}
	byName := map[string]gamma.DBAccuracy{}
	for _, a := range accs {
		byName[a.DB] = a
	}
	ipmap := byName["ripe-ipmap"]
	if ipmap.CountryPct < 88 {
		t.Errorf("ipmap country accuracy = %.1f%%, want ~92%%", ipmap.CountryPct)
	}
	for _, name := range []string{"maxmind-sim", "dbip-sim", "ipinfo-sim"} {
		alt := byName[name]
		if alt.Entries == 0 {
			t.Fatalf("%s is empty", name)
		}
		if alt.CoveragePct < ipmap.CoveragePct-2 {
			t.Errorf("%s coverage %.1f%% should rival ipmap's %.1f%%", name, alt.CoveragePct, ipmap.CoveragePct)
		}
		if alt.CityPct >= ipmap.CityPct {
			t.Errorf("%s city accuracy %.1f%% should trail ipmap's %.1f%%", name, alt.CityPct, ipmap.CityPct)
		}
	}
	// dbip (the weakest profile) must be least accurate at country level.
	if byName["dbip-sim"].CountryPct >= byName["ipinfo-sim"].CountryPct {
		t.Errorf("dbip (%.1f%%) should trail ipinfo (%.1f%%)",
			byName["dbip-sim"].CountryPct, byName["ipinfo-sim"].CountryPct)
	}
}

func TestClassifyWithDBFlips(t *testing.T) {
	study := fullStudy(t)
	w := study.World
	var addrs []netip.Addr
	for _, h := range w.Net.Hosts() {
		addrs = append(addrs, h.Addr)
		if len(addrs) >= 500 {
			break
		}
	}
	flips := gamma.ClassifyWithDB(w, "PK", w.AltDBs["dbip-sim"], addrs)
	if flips == 0 {
		t.Error("switching provider should flip some local/non-local verdicts")
	}
	if flips > len(addrs)/2 {
		t.Errorf("too many flips (%d/%d); databases mostly agree in reality", flips, len(addrs))
	}
	// Same database: zero flips.
	if n := gamma.ClassifyWithDB(w, "PK", w.IPMap, addrs); n != 0 {
		t.Errorf("identical databases flipped %d verdicts", n)
	}
}
