// Command worldgen builds the synthetic world and dumps inventories of its
// pieces — useful for inspecting what a given seed produces before running
// the study against it.
//
// Usage:
//
//	worldgen -seed 42                       # summary
//	worldgen -seed 42 -what volunteers      # volunteer vantage points
//	worldgen -seed 42 -what orgs            # tracker organizations
//	worldgen -seed 42 -what sites -country PK
//	worldgen -seed 42 -what hosts | head
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/websim"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 42, "world seed")
		what     = flag.String("what", "summary", "summary | volunteers | orgs | sites | hosts | probes | rankings")
		country  = flag.String("country", "", "filter sites/rankings by country code")
		validate = flag.Bool("validate", false, "run the world self-check and exit non-zero on problems")
	)
	flag.Parse()
	if *validate {
		if err := runValidate(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "worldgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*seed, *what, *country); err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}
}

func runValidate(seed uint64) error {
	w, err := gamma.NewWorld(seed)
	if err != nil {
		return err
	}
	problems := w.Validate()
	if len(problems) == 0 {
		fmt.Printf("world (seed %d) is internally consistent\n", seed)
		return nil
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "  -", p)
	}
	return fmt.Errorf("%d consistency problems", len(problems))
}

func run(seed uint64, what, country string) error {
	w, err := gamma.NewWorld(seed)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	switch what {
	case "summary":
		summary := map[string]any{
			"seed":              w.Seed,
			"countries":         len(w.Registry.Codes()),
			"source_countries":  len(w.SourceCountries()),
			"sites":             w.Web.Len(),
			"hosts":             len(w.Net.Hosts()),
			"atlas_probes":      w.Mesh.Len(),
			"organizations":     w.Orgs.Len(),
			"tracker_hostnames": len(w.TrackerHostnames),
			"easylist_rules":    len(w.EasyList.Rules),
			"easyprivacy_rules": len(w.EasyPrivacy.Rules),
			"manual_trackers":   len(w.ManualTrackers),
			"ipmap_entries":     w.IPMap.Len(),
			"tranco_entries":    len(w.Tranco),
		}
		return enc.Encode(summary)
	case "volunteers":
		return enc.Encode(w.Volunteers)
	case "orgs":
		return enc.Encode(w.Orgs.Orgs())
	case "sites":
		var sites []websim.Site
		for _, s := range w.Web.Sites() {
			if country == "" || s.Country == country {
				sites = append(sites, s)
			}
		}
		return enc.Encode(sites)
	case "hosts":
		return enc.Encode(w.Net.Hosts())
	case "probes":
		return enc.Encode(w.Mesh.Probes())
	case "rankings":
		if country == "" {
			return fmt.Errorf("rankings needs -country")
		}
		return enc.Encode(map[string]any{
			"similarweb": w.Rankings.Similarweb[country],
			"semrush":    w.Rankings.Semrush[country],
			"ahrefs":     w.Rankings.Ahrefs[country],
		})
	default:
		return fmt.Errorf("unknown -what %q", what)
	}
}
