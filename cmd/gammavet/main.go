// Command gammavet is the suite's custom determinism & concurrency
// linter. It type-checks every package in the module with the standard
// library's go/ast, go/parser and go/types and enforces the invariants
// behind the golden-harness guarantee:
//
//	maporder         — no map iteration feeding slices/writers/channels unsorted
//	walltime         — no wall-clock reads outside the injectable sched.Clock,
//	                   direct or transitive from exported serving entry points
//	ambientrand      — no randomness that isn't keyed off the study seed
//	sharedmap        — no unguarded shared-map writes from pool-submitted work
//	hotalloc         — no allocating constructs reachable from //gamma:hotpath
//	                   roots (escape hatch: a reasoned //gamma:coldpath)
//	atomicdiscipline — no by-value traffic in atomic/lock-bearing types
//	directive        — no malformed //gammavet:ignore / //gamma: comments
//
// The interprocedural checks run over a module-wide static call graph
// (direct calls, interface calls devirtualized through the module's
// declared types, function values tracked one hop); -graph dumps it and
// -chains expands each finding's root-to-leaf call chain.
//
// Usage:
//
//	go run ./cmd/gammavet ./...
//	go run ./cmd/gammavet -json ./internal/pipeline/...
//	go run ./cmd/gammavet -chains ./internal/serve
//	go run ./cmd/gammavet -graph ./internal/serve
//	go run ./cmd/gammavet -write-baseline ./...   # grandfather current findings
//
// Findings are suppressible with a reasoned directive on or above the
// offending line:
//
//	//gammavet:ignore maporder verdict is order-invariant: values all identical
//
// gammavet exits 2 on usage/load errors, 1 when any non-baselined
// error-severity diagnostic remains, 0 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/gamma-suite/gamma/internal/lint"
)

func main() {
	var (
		dir           = flag.String("C", ".", "module root (directory containing go.mod)")
		jsonOut       = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		baselinePath  = flag.String("baseline", ".gammavet-baseline.json", "baseline file of grandfathered findings (relative to -C)")
		writeBaseline = flag.Bool("write-baseline", false, "write current findings to the baseline file and exit 0")
		checkNames    = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		listChecks    = flag.Bool("list", false, "list available checks and exit")
		graphDump     = flag.Bool("graph", false, "dump the static call graph for the matched packages and exit")
		chains        = flag.Bool("chains", false, "expand each interprocedural finding's call chain (text output)")
	)
	flag.Parse()

	if *graphDump {
		g, pkgs, err := lint.LoadGraph(*dir, flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "gammavet:", err)
			os.Exit(2)
		}
		g.Dump(os.Stdout, pkgs)
		return
	}

	checks := lint.Checks()
	if *listChecks {
		for _, c := range checks {
			fmt.Printf("%-12s %s\n", c.ID, c.Doc)
		}
		return
	}
	if *checkNames != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*checkNames, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var subset []lint.Check
		for _, c := range checks {
			if want[c.ID] {
				subset = append(subset, c)
				delete(want, c.ID)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for name := range want {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "gammavet: unknown check(s): %s (try -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		checks = subset
	}

	diags, err := lint.Run(*dir, flag.Args(), checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gammavet:", err)
		os.Exit(2)
	}

	basePath := *baselinePath
	if !strings.HasPrefix(basePath, "/") {
		basePath = *dir + "/" + basePath
	}
	if *writeBaseline {
		if err := lint.FromDiagnostics(diags).Save(basePath); err != nil {
			fmt.Fprintln(os.Stderr, "gammavet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "gammavet: wrote %d finding(s) to %s\n", len(diags), basePath)
		return
	}
	baseline, err := lint.LoadBaseline(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gammavet:", err)
		os.Exit(2)
	}
	fresh, grandfathered := baseline.Filter(diags)

	if *jsonOut {
		out := fresh
		if out == nil {
			out = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "gammavet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range fresh {
			fmt.Println(d)
			if *chains {
				for _, fr := range d.Chain {
					fmt.Printf("\t%s (%s:%d)\n", fr.Func, fr.File, fr.Line)
				}
			}
		}
		if len(grandfathered) > 0 {
			fmt.Fprintf(os.Stderr, "gammavet: %d baselined finding(s) suppressed\n", len(grandfathered))
		}
	}

	failing := 0
	for _, d := range fresh {
		if d.Severity == lint.Error {
			failing++
		}
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "gammavet: %d finding(s)\n", failing)
		os.Exit(1)
	}
}
