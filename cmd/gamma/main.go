// Command gamma runs the volunteer measurement suite for one source
// country against the synthetic world, exactly as a field volunteer would
// run the tool against the real Internet: it loads every target website,
// records the network requests, resolves forward and reverse DNS, launches
// traceroutes to every resolved IP, and writes the uploadable JSON dataset.
//
// Usage:
//
//	gamma -country PK -seed 42 -out data/pk.json
//	gamma -country PK -seed 42 -out data/pk.json -resume   # continue a run
//	gamma -country PK -seed 42 -out data/pk.json -analyze  # preview Box 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/browser"
	"github.com/gamma-suite/gamma/internal/consent"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/sched"
)

func main() {
	var (
		country = flag.String("country", "", "source country code (e.g. PK); required")
		seed    = flag.Uint64("seed", 42, "world seed")
		out     = flag.String("out", "", "output dataset path (JSON); required")
		resume  = flag.Bool("resume", false, "resume an interrupted run from -out")
		anon    = flag.Bool("anonymize", false, "strip the volunteer IP before writing")
		harDir  = flag.String("har", "", "also write one HAR file per loaded page into this directory")
		chunk   = flag.Int("chunk", 0, "measure at most N pending targets this session (0 = all)")

		analyze  = flag.Bool("analyze", false, "after recording, run the Box-2 pipeline over this dataset and print the funnel")
		aworkers = flag.Int("analysis-workers", 0, "analysis worker pool size for -analyze; 0 = GOMAXPROCS, 1 = serial")

		showConsent = flag.Bool("show-consent", false, "print the consent document and exit")
		consentPath = flag.String("consent", "", "path to the consent acceptance record (create with -accept)")
		accept      = flag.Bool("accept", false, "record acceptance of the consent document at -consent and exit")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		traceFile  = flag.String("trace", "", "write a runtime execution trace of the run to this file")
	)
	flag.Parse()
	if *showConsent {
		fmt.Print(consent.Document(consent.DefaultStudy()))
		return
	}
	if *accept {
		if *consentPath == "" || *country == "" {
			fmt.Fprintln(os.Stderr, "gamma: -accept needs -consent PATH and -country")
			os.Exit(2)
		}
		doc := consent.Document(consent.DefaultStudy())
		a := consent.Accept("vol-"+strings.ToLower(*country), doc, sched.Wall().Now())
		if err := consent.Save(*consentPath, a); err != nil {
			fmt.Fprintln(os.Stderr, "gamma:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "consent recorded at %s\n", *consentPath)
		return
	}
	if *country == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *consentPath != "" {
		a, err := consent.Load(*consentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gamma:", err)
			os.Exit(1)
		}
		if !a.Covers(consent.Document(consent.DefaultStudy())) {
			fmt.Fprintln(os.Stderr, "gamma: consent record does not match the current consent document; re-run -accept")
			os.Exit(1)
		}
	}
	stopProfiling, err := startProfiling(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gamma:", err)
		os.Exit(1)
	}
	if err := run(*country, *seed, *out, *resume, *anon, *harDir, *chunk, *analyze, *aworkers); err != nil {
		stopProfiling()
		fmt.Fprintln(os.Stderr, "gamma:", err)
		os.Exit(1)
	}
	stopProfiling()
}

func run(country string, seed uint64, out string, resume, anon bool, harDir string, chunk int, analyze bool, analysisWorkers int) error {
	fmt.Fprintf(os.Stderr, "building world (seed %d)...\n", seed)
	w, err := gamma.NewWorld(seed)
	if err != nil {
		return err
	}
	sels, err := gamma.SelectTargets(w)
	if err != nil {
		return err
	}
	sel, ok := sels[country]
	if !ok {
		return fmt.Errorf("no volunteer in country %q (have %v)", country, w.SourceCountries())
	}
	env, cfg, err := gamma.VolunteerEnv(w, country)
	if err != nil {
		return err
	}
	cfg.Targets = sel.Targets()
	suite, err := core.New(cfg, env)
	if err != nil {
		return err
	}

	ctx := context.Background()
	var ds *core.Dataset
	if resume {
		ds, err = core.LoadDataset(out)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		fmt.Fprintf(os.Stderr, "resuming: %d/%d targets already recorded\n", len(ds.Pages), len(cfg.Targets))
		if err := suite.ResumeLimit(ctx, ds, chunk); err != nil {
			return err
		}
	} else if chunk > 0 {
		ds = suite.NewDataset()
		if err := suite.ResumeLimit(ctx, ds, chunk); err != nil {
			return err
		}
	} else {
		ds, err = suite.Run(ctx)
		if err != nil {
			return err
		}
	}
	if anon {
		ds.Anonymize()
	}
	if err := core.SaveDataset(out, ds); err != nil {
		return err
	}
	if harDir != "" {
		n, err := writeHARs(harDir, ds)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d HAR files to %s\n", n, harDir)
	}
	fmt.Fprintf(os.Stderr, "recorded %d targets (%d loaded OK) -> %s\n",
		len(ds.Pages), ds.LoadedOK(), out)
	if analyze {
		return analyzePreview(w, ds, analysisWorkers)
	}
	return nil
}

// analyzePreview runs Box 2 over the freshly recorded dataset so a
// volunteer can sanity-check a session before uploading. The preview is
// advisory: the study's authoritative analysis happens server-side over
// all countries at once.
func analyzePreview(w *gamma.World, ds *core.Dataset, workers int) error {
	res, err := gamma.AnalyzeWithWorkers(w, []*core.Dataset{ds}, workers)
	if err != nil {
		return fmt.Errorf("analyze preview: %w", err)
	}
	fn := res.Funnel
	fmt.Fprintf(os.Stderr,
		"analysis preview (%s): %d domain observations, %d claimed non-local, %d survived SOL, %d survived rDNS, %d trackers (%d cloaked)\n",
		ds.Country, fn.DomainObservations, fn.NonLocalClaimed, fn.AfterSOL, fn.AfterRDNS, fn.Trackers, fn.CloakedTrackers)
	return nil
}

// writeHARs exports each loaded page as a standard HAR 1.2 document.
func writeHARs(dir string, ds *core.Dataset) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	for _, p := range ds.Pages {
		if !p.Load.OK {
			continue
		}
		pl := browser.PageLoad{
			SiteURL:    p.Load.URL,
			SiteDomain: p.Load.Site,
			OK:         p.Load.OK,
			DurationMs: p.Load.DurationMs,
		}
		for _, r := range p.Load.Requests {
			pl.Requests = append(pl.Requests, browser.NetRequest{
				URL: r.URL, Domain: r.Domain, Type: r.Type,
				Initiator: r.Initiator, Blocked: r.Blocked,
			})
		}
		raw, err := pl.ToHAR(ds.StartedAt).JSON()
		if err != nil {
			return n, err
		}
		name := filepath.Join(dir, strings.ReplaceAll(p.Target.Domain, "/", "_")+".har")
		if err := os.WriteFile(name, raw, 0o644); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
