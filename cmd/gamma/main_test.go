package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gamma-suite/gamma/internal/core"
)

func TestRunRecordsDataset(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "lk.json.gz")
	if err := run("LK", 42, out, false, false, "", 25, false, 0); err != nil {
		t.Fatal(err)
	}
	ds, err := core.LoadDataset(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Pages) != 25 {
		t.Fatalf("chunked run recorded %d pages, want 25", len(ds.Pages))
	}
	// Resume continues from the same file.
	if err := run("LK", 42, out, true, true, filepath.Join(dir, "har"), 10, true, 2); err != nil {
		t.Fatal(err)
	}
	ds, err = core.LoadDataset(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Pages) != 35 {
		t.Fatalf("resume+chunk recorded %d pages, want 35", len(ds.Pages))
	}
	if ds.VolunteerIP != "" {
		t.Error("anonymize flag should strip the IP")
	}
	hars, _ := os.ReadDir(filepath.Join(dir, "har"))
	if len(hars) == 0 {
		t.Error("HAR directory empty")
	}
	for _, h := range hars {
		if !strings.HasSuffix(h.Name(), ".har") {
			t.Errorf("unexpected HAR file %s", h.Name())
		}
	}
}

func TestRunRejectsUnknownCountry(t *testing.T) {
	if err := run("XX", 42, filepath.Join(t.TempDir(), "x.json"), false, false, "", 0, false, 0); err == nil {
		t.Error("unknown country must fail")
	}
}
