package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// startProfiling arms the requested profilers around the measurement run.
// Any path may be empty; the returned stop function is idempotent and
// writes/flushes whatever was armed. These flags exist so a slow volunteer
// run in the field can be diagnosed with the standard Go toolchain:
//
//	gamma -country PK -out pk.json -cpuprofile cpu.prof -memprofile mem.prof
//	go tool pprof cpu.prof
func startProfiling(cpuPath, memPath, tracePath string) (stop func(), err error) {
	var stops []func()
	stopAll := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		stops = nil
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", cpuPath)
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			stopAll()
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stopAll()
			return nil, fmt.Errorf("trace: %w", err)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
			fmt.Fprintf(os.Stderr, "execution trace written to %s\n", tracePath)
		})
	}
	if memPath != "" {
		stops = append(stops, func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gamma: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gamma: memprofile:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", memPath)
		})
	}
	return stopAll, nil
}
