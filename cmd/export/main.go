// Command export writes the study's public artifacts: one CSV per table
// and figure (the paper releases its tool and data; this is the data
// half), plus optionally the SVG figures. Exports are always anonymized.
//
// Usage:
//
//	export -seed 42 -out artifacts/            # run study, export CSVs
//	export -seed 42 -out artifacts/ -svg       # plus SVG figures
//	export -seed 42 -data ./uploads -out artifacts/   # from saved datasets
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/export"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 42, "world seed")
		out     = flag.String("out", "", "output directory; required")
		dataDir = flag.String("data", "", "analyze saved datasets from this directory instead of running the study")
		withSVG = flag.Bool("svg", false, "also write the SVG figures")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*seed, *out, *dataDir, *withSVG); err != nil {
		fmt.Fprintln(os.Stderr, "export:", err)
		os.Exit(1)
	}
}

func run(seed uint64, out, dataDir string, withSVG bool) error {
	ctx := context.Background()
	var study *gamma.Study
	if dataDir == "" {
		fmt.Fprintf(os.Stderr, "running the full study (seed %d)...\n", seed)
		var err error
		study, err = gamma.RunStudy(ctx, seed)
		if err != nil {
			return err
		}
	} else {
		w, err := gamma.NewWorld(seed)
		if err != nil {
			return err
		}
		files, err := filepath.Glob(filepath.Join(dataDir, "*.json*"))
		if err != nil {
			return err
		}
		sort.Strings(files)
		var datasets []*core.Dataset
		for _, f := range files {
			if filepath.Ext(f) == ".tmp" {
				continue
			}
			ds, err := core.LoadDataset(f)
			if err != nil {
				return err
			}
			datasets = append(datasets, ds)
		}
		if len(datasets) == 0 {
			return fmt.Errorf("no datasets in %s", dataDir)
		}
		res, err := gamma.Analyze(w, datasets)
		if err != nil {
			return err
		}
		sels, err := gamma.SelectTargets(w)
		if err != nil {
			return err
		}
		study = &gamma.Study{World: w, Selections: sels, Result: res}
	}

	written, err := export.Artifacts(study.Result, study.World.Registry, gamma.PolicyRegistry(study.World), out)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d CSV artifacts to %s\n", len(written), out)
	if withSVG {
		if err := gamma.WriteFigures(study, out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote SVG figures to %s\n", out)
	}
	return nil
}
