// Command gammad is the query daemon over analyzed tracking-flow corpora:
// it builds an immutable serving snapshot (from a simulated study or a
// directory of uploaded volunteer datasets), then answers the /v1 API
// from precomputed payloads — zero allocations per request — with
// zero-downtime hot reloads via POST /admin/reload.
//
// Usage:
//
//	gammad -seed 42 -addr :8080              # serve a simulated study
//	gammad -seed 42 -data ./uploads          # serve analyzed datasets
//	gammad -seed 42 -shards 4                # partition across 4 swappable shards
//	gammad -seed 42 -selfcheck               # boot, probe every endpoint, exit
//	gammad -seed 42 -selfcheck -shards 4     # same, scatter-gather vs monolithic oracle
//
// Endpoints:
//
//	GET  /v1/countries            all source countries, summarized
//	GET  /v1/countries/{cc}       one country's full profile
//	GET  /v1/trackers             all cross-border tracker domains
//	GET  /v1/trackers/{domain}    reverse index: who observes this tracker
//	GET  /v1/flows                country/continent/organization flow matrices
//	GET  /v1/figures              figure ids
//	GET  /v1/figures/{id}         one paper figure's data payload
//	GET  /v1/snapshots            the addressable snapshot history, newest first
//	GET  /healthz                 liveness
//	GET  /debug/metrics           per-endpoint counters + latency histograms + breaker states
//	POST /admin/reload[?seed=N]   rebuild and atomically swap the snapshot
//	POST /admin/rollback          restore the previously installed snapshot
//
// Any /v1 read accepts ?snapshot=<id> to serve from a still-retained
// historical generation (-history controls the ring depth). Reloads are
// validation-gated twice: a failed rebuild or an invalid replacement
// reports 422 with the current snapshot still serving, and a replacement
// that installs but fails the post-install self-probe is auto-rolled
// back. When sharded, each shard sits behind a circuit breaker
// (-breaker-failures / -breaker-cooldown): while a shard's circuit is
// open, listings serve a deterministic surviving-shards merge marked
// with the Gamma-Degraded header, and single-key requests owned by the
// open shard return 503 with Retry-After. SIGINT/SIGTERM drain in-flight
// requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"syscall"
	"time"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/sched"
	"github.com/gamma-suite/gamma/internal/serve"
)

// config gathers the daemon's flag-driven knobs.
type config struct {
	addr        string
	seed        uint64
	dataDir     string
	workers     int
	shards      int
	maxInflight int
	acquire     time.Duration
	drain       time.Duration
	selfcheck   bool

	history         int
	breakerFailures int
	breakerCooldown time.Duration
	shardDeadline   time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.Uint64Var(&cfg.seed, "seed", 42, "world seed (and dataset analysis seed)")
	flag.StringVar(&cfg.dataDir, "data", "", "directory of volunteer dataset JSON files; empty simulates the full study")
	flag.IntVar(&cfg.workers, "workers", 0, "worker pool size for study/analysis; 0 = GOMAXPROCS")
	flag.IntVar(&cfg.shards, "shards", 1, "partition the snapshot across N independently-swappable shards; 1 serves monolithic")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 256, "concurrent request limit before load-shedding")
	flag.DurationVar(&cfg.acquire, "acquire-timeout", time.Second, "how long a request may wait for admission before 503")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful shutdown drain window")
	flag.BoolVar(&cfg.selfcheck, "selfcheck", false, "boot on an ephemeral port, probe every endpoint against the snapshot, reload, exit")
	flag.IntVar(&cfg.history, "history", serve.DefaultHistoryDepth, "installed snapshots kept addressable for ?snapshot= reads and rollback")
	flag.IntVar(&cfg.breakerFailures, "breaker-failures", 0, "consecutive shard failures that open its circuit; 0 = default (5)")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", 0, "open-circuit cooldown before a half-open trial; 0 = default (10s)")
	flag.DurationVar(&cfg.shardDeadline, "shard-deadline", 0, "per-request budget for one shard read; 0 = default (100ms)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gammad:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.shards < 1 || cfg.shards > serve.MaxShards {
		return fmt.Errorf("-shards %d outside [1, %d]", cfg.shards, serve.MaxShards)
	}
	fmt.Fprintf(os.Stderr, "gammad: building snapshot %s...\n", snapshotID(cfg.seed, cfg.dataDir))
	snap, err := buildSnapshot(context.Background(), cfg.seed, cfg.dataDir, cfg.workers)
	if err != nil {
		return err
	}
	opts := serve.Options{
		MaxConcurrent:  cfg.maxInflight,
		AcquireTimeout: cfg.acquire,
		Reload: func(ctx context.Context, params url.Values) (*serve.Snapshot, error) {
			s := cfg.seed
			if raw := params.Get("seed"); raw != "" {
				v, err := strconv.ParseUint(raw, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad seed %q: %w", raw, err)
				}
				s = v
			}
			return buildSnapshot(ctx, s, cfg.dataDir, cfg.workers)
		},
	}
	// The same reloader feeds both backends: a sharded install
	// re-partitions the reloaded snapshot across the set shard by shard.
	var srv *serve.Server
	if cfg.shards > 1 {
		set, err := serve.NewShardSetWithOptions(snap, cfg.shards, serve.ShardSetOptions{
			Breaker: sched.BreakerConfig{
				FailureThreshold: cfg.breakerFailures,
				Cooldown:         cfg.breakerCooldown,
			},
			LoadBudget:   cfg.shardDeadline,
			HistoryDepth: cfg.history,
		})
		if err != nil {
			return err
		}
		srv = serve.NewSharded(set, opts)
	} else {
		store, err := serve.NewStoreWithOptions(snap, serve.StoreOptions{HistoryDepth: cfg.history})
		if err != nil {
			return err
		}
		srv = serve.New(store, opts)
	}
	fmt.Fprintf(os.Stderr, "gammad: snapshot %s ready: %d countries, %d tracker domains, %d endpoints, %d shard(s)\n",
		snap.Meta().ID, len(snap.CountryCodes()), len(snap.TrackerDomains()), len(snap.Endpoints()), cfg.shards)

	if cfg.selfcheck {
		return runSelfcheck(srv, snap, cfg.shards)
	}

	hs := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "gammad: listening on %s\n", cfg.addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "gammad: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "gammad: drained, bye")
	return nil
}

// snapshotID names a snapshot's provenance for the X-Gamma-Snapshot
// header and /debug/metrics.
func snapshotID(seed uint64, dataDir string) string {
	if dataDir != "" {
		return fmt.Sprintf("data-%s@seed-%d", filepath.Clean(dataDir), seed)
	}
	return fmt.Sprintf("seed-%d", seed)
}

// buildSnapshot produces a serving snapshot: from the datasets in dataDir
// when given, else from a full simulated study at seed. Response bodies
// depend only on (seed, datasets), so a same-input rebuild is
// byte-identical — the property the selfcheck's reload probe asserts.
func buildSnapshot(ctx context.Context, seed uint64, dataDir string, workers int) (*serve.Snapshot, error) {
	meta := serve.Meta{ID: snapshotID(seed, dataDir), BuiltAt: sched.Wall().Now()}
	if dataDir == "" {
		study, err := gamma.RunStudyWithOptions(ctx, seed, gamma.StudyOptions{
			Workers:         workers,
			AnalysisWorkers: workers,
		})
		if err != nil {
			return nil, err
		}
		return serve.Build(study.Result, study.World.Registry, gamma.PolicyRegistry(study.World), meta)
	}
	datasets, err := loadDatasets(dataDir)
	if err != nil {
		return nil, err
	}
	w, err := gamma.NewWorld(seed)
	if err != nil {
		return nil, err
	}
	res, err := gamma.AnalyzeWithWorkers(w, datasets, workers)
	if err != nil {
		return nil, err
	}
	return serve.Build(res, w.Registry, gamma.PolicyRegistry(w), meta)
}

// loadDatasets reads every *.json / *.json.gz volunteer dataset in dir,
// in sorted filename order.
func loadDatasets(dir string) ([]*core.Dataset, error) {
	var files []string
	for _, pattern := range []string{"*.json", "*.json.gz"} {
		matches, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return nil, err
		}
		files = append(files, matches...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no datasets in %s", dir)
	}
	sort.Strings(files)
	datasets := make([]*core.Dataset, 0, len(files))
	for _, f := range files {
		ds, err := core.LoadDataset(f)
		if err != nil {
			return nil, err
		}
		datasets = append(datasets, ds)
	}
	return datasets, nil
}
