// Command gammad is the query daemon over analyzed tracking-flow corpora:
// it builds an immutable serving snapshot (from a simulated study or a
// directory of uploaded volunteer datasets), then answers the /v1 API
// from precomputed payloads — zero allocations per request — with
// zero-downtime hot reloads via POST /admin/reload.
//
// Usage:
//
//	gammad -seed 42 -addr :8080              # serve a simulated study
//	gammad -seed 42 -data ./uploads          # serve analyzed datasets
//	gammad -seed 42 -selfcheck               # boot, probe every endpoint, exit
//
// Endpoints:
//
//	GET  /v1/countries            all source countries, summarized
//	GET  /v1/countries/{cc}       one country's full profile
//	GET  /v1/trackers             all cross-border tracker domains
//	GET  /v1/trackers/{domain}    reverse index: who observes this tracker
//	GET  /v1/flows                country/continent/organization flow matrices
//	GET  /v1/figures              figure ids
//	GET  /v1/figures/{id}         one paper figure's data payload
//	GET  /healthz                 liveness
//	GET  /debug/metrics           per-endpoint counters + latency histograms
//	POST /admin/reload[?seed=N]   rebuild and atomically swap the snapshot
//
// Reloads are validation-gated: a failed rebuild or an invalid
// replacement snapshot reports 422 and leaves the current snapshot
// serving. SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"syscall"
	"time"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/sched"
	"github.com/gamma-suite/gamma/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Uint64("seed", 42, "world seed (and dataset analysis seed)")
		dataDir     = flag.String("data", "", "directory of volunteer dataset JSON files; empty simulates the full study")
		workers     = flag.Int("workers", 0, "worker pool size for study/analysis; 0 = GOMAXPROCS")
		maxInflight = flag.Int("max-inflight", 256, "concurrent request limit before load-shedding")
		acquire     = flag.Duration("acquire-timeout", time.Second, "how long a request may wait for admission before 503")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown drain window")
		selfcheck   = flag.Bool("selfcheck", false, "boot on an ephemeral port, probe every endpoint against the snapshot, reload, exit")
	)
	flag.Parse()
	if err := run(*addr, *seed, *dataDir, *workers, *maxInflight, *acquire, *drain, *selfcheck); err != nil {
		fmt.Fprintln(os.Stderr, "gammad:", err)
		os.Exit(1)
	}
}

func run(addr string, seed uint64, dataDir string, workers, maxInflight int, acquire, drain time.Duration, selfcheck bool) error {
	fmt.Fprintf(os.Stderr, "gammad: building snapshot %s...\n", snapshotID(seed, dataDir))
	snap, err := buildSnapshot(context.Background(), seed, dataDir, workers)
	if err != nil {
		return err
	}
	store, err := serve.NewStore(snap)
	if err != nil {
		return err
	}
	srv := serve.New(store, serve.Options{
		MaxConcurrent:  maxInflight,
		AcquireTimeout: acquire,
		Reload: func(ctx context.Context, params url.Values) (*serve.Snapshot, error) {
			s := seed
			if raw := params.Get("seed"); raw != "" {
				v, err := strconv.ParseUint(raw, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad seed %q: %w", raw, err)
				}
				s = v
			}
			return buildSnapshot(ctx, s, dataDir, workers)
		},
	})
	fmt.Fprintf(os.Stderr, "gammad: snapshot %s ready: %d countries, %d tracker domains, %d endpoints\n",
		snap.Meta().ID, len(snap.CountryCodes()), len(snap.TrackerDomains()), len(snap.Endpoints()))

	if selfcheck {
		return runSelfcheck(srv, store)
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "gammad: listening on %s\n", addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "gammad: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "gammad: drained, bye")
	return nil
}

// snapshotID names a snapshot's provenance for the X-Gamma-Snapshot
// header and /debug/metrics.
func snapshotID(seed uint64, dataDir string) string {
	if dataDir != "" {
		return fmt.Sprintf("data-%s@seed-%d", filepath.Clean(dataDir), seed)
	}
	return fmt.Sprintf("seed-%d", seed)
}

// buildSnapshot produces a serving snapshot: from the datasets in dataDir
// when given, else from a full simulated study at seed. Response bodies
// depend only on (seed, datasets), so a same-input rebuild is
// byte-identical — the property the selfcheck's reload probe asserts.
func buildSnapshot(ctx context.Context, seed uint64, dataDir string, workers int) (*serve.Snapshot, error) {
	meta := serve.Meta{ID: snapshotID(seed, dataDir), BuiltAt: sched.Wall().Now()}
	if dataDir == "" {
		study, err := gamma.RunStudyWithOptions(ctx, seed, gamma.StudyOptions{
			Workers:         workers,
			AnalysisWorkers: workers,
		})
		if err != nil {
			return nil, err
		}
		return serve.Build(study.Result, study.World.Registry, gamma.PolicyRegistry(study.World), meta)
	}
	datasets, err := loadDatasets(dataDir)
	if err != nil {
		return nil, err
	}
	w, err := gamma.NewWorld(seed)
	if err != nil {
		return nil, err
	}
	res, err := gamma.AnalyzeWithWorkers(w, datasets, workers)
	if err != nil {
		return nil, err
	}
	return serve.Build(res, w.Registry, gamma.PolicyRegistry(w), meta)
}

// loadDatasets reads every *.json / *.json.gz volunteer dataset in dir,
// in sorted filename order.
func loadDatasets(dir string) ([]*core.Dataset, error) {
	var files []string
	for _, pattern := range []string{"*.json", "*.json.gz"} {
		matches, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return nil, err
		}
		files = append(files, matches...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no datasets in %s", dir)
	}
	sort.Strings(files)
	datasets := make([]*core.Dataset, 0, len(files))
	for _, f := range files {
		ds, err := core.LoadDataset(f)
		if err != nil {
			return nil, err
		}
		datasets = append(datasets, ds)
	}
	return datasets, nil
}
