package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"github.com/gamma-suite/gamma/internal/serve"
)

// runSelfcheck boots the server on an ephemeral loopback port and probes
// it as a client would: every enumerated endpoint must serve a 200 whose
// body is byte-identical to the snapshot's precomputed payload, the
// health and metrics endpoints must answer, and a same-input hot reload
// must swap without changing a single response byte. CI runs this as the
// serving layer's end-to-end gate — no fixed port, no golden files on
// disk, the snapshot itself is the oracle.
func runSelfcheck(srv *serve.Server, store *serve.Store) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "gammad: selfcheck probing %s\n", base)

	snap := store.Load()
	probe := func() error {
		for _, path := range append([]string{"/healthz"}, snap.Endpoints()...) {
			resp, err := http.Get(base + path)
			if err != nil {
				return fmt.Errorf("GET %s: %w", path, err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("GET %s: %w", path, err)
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("GET %s = %d", path, resp.StatusCode)
			}
			if path == "/healthz" {
				continue
			}
			want, ok := snap.Body(path)
			if !ok {
				return fmt.Errorf("snapshot cannot resolve its own endpoint %s", path)
			}
			if !bytes.Equal(body, want) {
				return fmt.Errorf("GET %s body differs from the precomputed payload", path)
			}
		}
		return nil
	}
	if err := probe(); err != nil {
		return fmt.Errorf("selfcheck: %w", err)
	}
	fmt.Fprintf(os.Stderr, "gammad: selfcheck %d endpoints OK, reloading...\n", len(snap.Endpoints())+1)

	// Hot reload with the same inputs: must swap (Swapped=true) and keep
	// every body byte-identical, proving /v1 responses are a pure
	// function of the corpus.
	resp, err := http.Post(base+"/admin/reload", "", nil)
	if err != nil {
		return fmt.Errorf("selfcheck reload: %w", err)
	}
	reloadBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("selfcheck reload: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck reload = %d: %s", resp.StatusCode, reloadBody)
	}
	var rr struct {
		Swapped bool   `json:"swapped"`
		Swaps   uint64 `json:"swaps"`
	}
	if err := json.Unmarshal(reloadBody, &rr); err != nil || !rr.Swapped || rr.Swaps != 1 {
		return fmt.Errorf("selfcheck reload response malformed: %s", reloadBody)
	}
	if err := probe(); err != nil {
		return fmt.Errorf("selfcheck after reload: %w", err)
	}

	var mp serve.MetricsPayload
	resp, err = http.Get(base + "/debug/metrics")
	if err != nil {
		return fmt.Errorf("selfcheck metrics: %w", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&mp)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("selfcheck metrics: %w", err)
	}
	if mp.Swaps != 1 || mp.Panics != 0 {
		return fmt.Errorf("selfcheck metrics: swaps=%d panics=%d", mp.Swaps, mp.Panics)
	}
	fmt.Fprintln(os.Stderr, "gammad: selfcheck OK (probed twice across a live reload, zero drift)")
	return nil
}
