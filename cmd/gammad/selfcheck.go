package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"github.com/gamma-suite/gamma/internal/serve"
)

// runSelfcheck boots the server on an ephemeral loopback port and probes
// it as a client would: every enumerated endpoint must serve a 200 whose
// body is byte-identical to the snapshot's precomputed payload, a
// revalidation with the returned ETag must come back 304 and bodiless,
// the health and metrics endpoints must answer, and a same-input hot
// reload must swap without changing a single response byte. When the
// daemon is sharded, snap is still the *monolithic* snapshot the shards
// were partitioned from, so the probe doubles as the shard-equivalence
// gate: scatter-gather serving must be indistinguishable, byte for byte,
// from the unsharded oracle. CI runs this at shard counts 1 and 4 — no
// fixed port, no golden files on disk, the snapshot itself is the oracle.
func runSelfcheck(srv *serve.Server, snap *serve.Snapshot, shards int) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "gammad: selfcheck probing %s (%d shard(s))\n", base, shards)

	probe := func() error {
		for _, path := range append([]string{"/healthz"}, snap.Endpoints()...) {
			resp, err := http.Get(base + path)
			if err != nil {
				return fmt.Errorf("GET %s: %w", path, err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("GET %s: %w", path, err)
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("GET %s = %d", path, resp.StatusCode)
			}
			if path == "/healthz" {
				continue
			}
			want, ok := snap.Body(path)
			if !ok {
				return fmt.Errorf("snapshot cannot resolve its own endpoint %s", path)
			}
			if !bytes.Equal(body, want) {
				return fmt.Errorf("GET %s body differs from the precomputed payload", path)
			}
			if resp.Header.Get("Etag") == "" {
				return fmt.Errorf("GET %s served no ETag", path)
			}
		}
		return nil
	}
	if err := probe(); err != nil {
		return fmt.Errorf("selfcheck: %w", err)
	}

	// Conditional-request probe: revalidating with the served ETag must
	// yield a bodiless 304; a stale validator must yield the full 200.
	if err := probeConditional(base + "/v1/countries"); err != nil {
		return fmt.Errorf("selfcheck conditional: %w", err)
	}
	fmt.Fprintf(os.Stderr, "gammad: selfcheck %d endpoints OK (ETag revalidation OK), reloading...\n",
		len(snap.Endpoints())+1)

	// Hot reload with the same inputs: must swap (Swapped=true) and keep
	// every body byte-identical, proving /v1 responses are a pure
	// function of the corpus. Sharded daemons re-partition on install, so
	// this also exercises the staggered per-shard swap path end to end.
	resp, err := http.Post(base+"/admin/reload", "", nil)
	if err != nil {
		return fmt.Errorf("selfcheck reload: %w", err)
	}
	reloadBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("selfcheck reload: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck reload = %d: %s", resp.StatusCode, reloadBody)
	}
	var rr struct {
		Swapped bool   `json:"swapped"`
		Swaps   uint64 `json:"swaps"`
	}
	if err := json.Unmarshal(reloadBody, &rr); err != nil || !rr.Swapped || rr.Swaps != 1 {
		return fmt.Errorf("selfcheck reload response malformed: %s", reloadBody)
	}
	if err := probe(); err != nil {
		return fmt.Errorf("selfcheck after reload: %w", err)
	}

	var mp serve.MetricsPayload
	resp, err = http.Get(base + "/debug/metrics")
	if err != nil {
		return fmt.Errorf("selfcheck metrics: %w", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&mp)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("selfcheck metrics: %w", err)
	}
	if mp.Swaps != 1 || mp.Panics != 0 {
		return fmt.Errorf("selfcheck metrics: swaps=%d panics=%d", mp.Swaps, mp.Panics)
	}
	if shards > 1 {
		if len(mp.Shards) != shards {
			return fmt.Errorf("selfcheck metrics: %d shard rows, want %d", len(mp.Shards), shards)
		}
		countries, trackers := 0, 0
		for _, row := range mp.Shards {
			if row.Swaps != 1 {
				return fmt.Errorf("selfcheck metrics: shard %d swaps=%d, want 1", row.Shard, row.Swaps)
			}
			countries += row.Countries
			trackers += row.Trackers
		}
		if countries != len(snap.CountryCodes()) || trackers != len(snap.TrackerDomains()) {
			return fmt.Errorf("selfcheck metrics: shards cover %d countries / %d trackers, want %d / %d",
				countries, trackers, len(snap.CountryCodes()), len(snap.TrackerDomains()))
		}
	} else if len(mp.Shards) != 0 {
		return fmt.Errorf("selfcheck metrics: monolithic daemon reported %d shard rows", len(mp.Shards))
	}
	fmt.Fprintln(os.Stderr, "gammad: selfcheck OK (probed twice across a live reload, zero drift)")
	return nil
}

// probeConditional checks the ETag/304 contract on one endpoint.
func probeConditional(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	full, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	etag := resp.Header.Get("Etag")
	if resp.StatusCode != http.StatusOK || etag == "" || len(full) == 0 {
		return fmt.Errorf("GET %s = %d, etag %q", url, resp.StatusCode, etag)
	}
	check := func(validator string, wantStatus int, wantBody bool) error {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("If-None-Match", validator)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != wantStatus {
			return fmt.Errorf("If-None-Match %s → %d, want %d", validator, resp.StatusCode, wantStatus)
		}
		if wantBody != (len(body) > 0) {
			return fmt.Errorf("If-None-Match %s → %d bytes of body, want body=%v", validator, len(body), wantBody)
		}
		return nil
	}
	if err := check(etag, http.StatusNotModified, false); err != nil {
		return err
	}
	if err := check("W/"+etag, http.StatusNotModified, false); err != nil {
		return err
	}
	return check(`"stale-validator"`, http.StatusOK, true)
}
