package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"github.com/gamma-suite/gamma/internal/serve"
)

// runSelfcheck boots the server on an ephemeral loopback port and probes
// it as a client would: every enumerated endpoint must serve a 200 whose
// body is byte-identical to the snapshot's precomputed payload, a
// revalidation with the returned ETag must come back 304 and bodiless,
// the health and metrics endpoints must answer, and a same-input hot
// reload must swap without changing a single response byte. When the
// daemon is sharded, snap is still the *monolithic* snapshot the shards
// were partitioned from, so the probe doubles as the shard-equivalence
// gate: scatter-gather serving must be indistinguishable, byte for byte,
// from the unsharded oracle. CI runs this at shard counts 1 and 4 — no
// fixed port, no golden files on disk, the snapshot itself is the oracle.
func runSelfcheck(srv *serve.Server, snap *serve.Snapshot, shards int) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "gammad: selfcheck probing %s (%d shard(s))\n", base, shards)

	probe := func() error {
		for _, path := range append([]string{"/healthz"}, snap.Endpoints()...) {
			resp, err := http.Get(base + path)
			if err != nil {
				return fmt.Errorf("GET %s: %w", path, err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("GET %s: %w", path, err)
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("GET %s = %d", path, resp.StatusCode)
			}
			if path == "/healthz" {
				continue
			}
			want, ok := snap.Body(path)
			if !ok {
				return fmt.Errorf("snapshot cannot resolve its own endpoint %s", path)
			}
			if !bytes.Equal(body, want) {
				return fmt.Errorf("GET %s body differs from the precomputed payload", path)
			}
			if resp.Header.Get("Etag") == "" {
				return fmt.Errorf("GET %s served no ETag", path)
			}
		}
		return nil
	}
	if err := probe(); err != nil {
		return fmt.Errorf("selfcheck: %w", err)
	}

	// Conditional-request probe: revalidating with the served ETag must
	// yield a bodiless 304; a stale validator must yield the full 200.
	if err := probeConditional(base + "/v1/countries"); err != nil {
		return fmt.Errorf("selfcheck conditional: %w", err)
	}
	fmt.Fprintf(os.Stderr, "gammad: selfcheck %d endpoints OK (ETag revalidation OK), reloading...\n",
		len(snap.Endpoints())+1)

	// Hot reload with the same inputs: must swap (Swapped=true) and keep
	// every body byte-identical, proving /v1 responses are a pure
	// function of the corpus. Sharded daemons re-partition on install, so
	// this also exercises the staggered per-shard swap path end to end.
	resp, err := http.Post(base+"/admin/reload", "", nil)
	if err != nil {
		return fmt.Errorf("selfcheck reload: %w", err)
	}
	reloadBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("selfcheck reload: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck reload = %d: %s", resp.StatusCode, reloadBody)
	}
	var rr struct {
		Swapped bool   `json:"swapped"`
		Swaps   uint64 `json:"swaps"`
	}
	if err := json.Unmarshal(reloadBody, &rr); err != nil || !rr.Swapped || rr.Swaps != 1 {
		return fmt.Errorf("selfcheck reload response malformed: %s", reloadBody)
	}
	if err := probe(); err != nil {
		return fmt.Errorf("selfcheck after reload: %w", err)
	}

	// History probe: the ring must now hold both generations with the
	// reloaded one live, and the original must stay readable through a
	// ?snapshot= time-travel read, byte-identical to the oracle.
	var sp serve.SnapshotsPayload
	resp, err = http.Get(base + "/v1/snapshots")
	if err != nil {
		return fmt.Errorf("selfcheck snapshots: %w", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&sp)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("selfcheck snapshots: %w", err)
	}
	if sp.Count != 2 || len(sp.Snapshots) != 2 || !sp.Snapshots[0].Live || sp.Snapshots[1].Live {
		return fmt.Errorf("selfcheck snapshots: count=%d, rows=%d", sp.Count, len(sp.Snapshots))
	}
	histID := sp.Snapshots[1].ID
	resp, err = http.Get(base + "/v1/countries?snapshot=" + histID)
	if err != nil {
		return fmt.Errorf("selfcheck historical read: %w", err)
	}
	histBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck historical read = %d: %v", resp.StatusCode, err)
	}
	if want, _ := snap.Body("/v1/countries"); !bytes.Equal(histBody, want) {
		return fmt.Errorf("selfcheck historical read: ?snapshot=%s body differs from the original generation", histID)
	}

	// Rollback probe: restore the pre-reload generation and verify every
	// endpoint still answers byte-identically (same corpus, same bytes —
	// the pure-function property again, now across install AND rollback).
	resp, err = http.Post(base+"/admin/rollback", "", nil)
	if err != nil {
		return fmt.Errorf("selfcheck rollback: %w", err)
	}
	rollBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("selfcheck rollback: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck rollback = %d: %s", resp.StatusCode, rollBody)
	}
	var rb struct {
		RolledBack bool   `json:"rolled_back"`
		Snapshot   string `json:"snapshot"`
		Swaps      uint64 `json:"swaps"`
	}
	if err := json.Unmarshal(rollBody, &rb); err != nil || !rb.RolledBack || rb.Snapshot != histID || rb.Swaps != 2 {
		return fmt.Errorf("selfcheck rollback response malformed: %s", rollBody)
	}
	if err := probe(); err != nil {
		return fmt.Errorf("selfcheck after rollback: %w", err)
	}

	var mp serve.MetricsPayload
	resp, err = http.Get(base + "/debug/metrics")
	if err != nil {
		return fmt.Errorf("selfcheck metrics: %w", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&mp)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("selfcheck metrics: %w", err)
	}
	if mp.Swaps != 2 || mp.Panics != 0 {
		return fmt.Errorf("selfcheck metrics: swaps=%d panics=%d", mp.Swaps, mp.Panics)
	}
	if mp.Rollbacks != 1 || mp.Degraded != 0 || mp.Unavailable != 0 {
		return fmt.Errorf("selfcheck metrics: rollbacks=%d degraded=%d unavailable=%d",
			mp.Rollbacks, mp.Degraded, mp.Unavailable)
	}
	if shards > 1 {
		if len(mp.Shards) != shards {
			return fmt.Errorf("selfcheck metrics: %d shard rows, want %d", len(mp.Shards), shards)
		}
		countries, trackers := 0, 0
		for _, row := range mp.Shards {
			if row.Swaps != 2 {
				return fmt.Errorf("selfcheck metrics: shard %d swaps=%d, want 2", row.Shard, row.Swaps)
			}
			if row.Breaker != "closed" || row.Trips != 0 {
				return fmt.Errorf("selfcheck metrics: shard %d breaker=%s trips=%d, want closed/0",
					row.Shard, row.Breaker, row.Trips)
			}
			countries += row.Countries
			trackers += row.Trackers
		}
		if countries != len(snap.CountryCodes()) || trackers != len(snap.TrackerDomains()) {
			return fmt.Errorf("selfcheck metrics: shards cover %d countries / %d trackers, want %d / %d",
				countries, trackers, len(snap.CountryCodes()), len(snap.TrackerDomains()))
		}
	} else if len(mp.Shards) != 0 {
		return fmt.Errorf("selfcheck metrics: monolithic daemon reported %d shard rows", len(mp.Shards))
	}
	fmt.Fprintln(os.Stderr, "gammad: selfcheck OK (probed three times across a live reload and rollback, zero drift)")
	return nil
}

// probeConditional checks the ETag/304 contract on one endpoint.
func probeConditional(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	full, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	etag := resp.Header.Get("Etag")
	if resp.StatusCode != http.StatusOK || etag == "" || len(full) == 0 {
		return fmt.Errorf("GET %s = %d, etag %q", url, resp.StatusCode, etag)
	}
	check := func(validator string, wantStatus int, wantBody bool) error {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("If-None-Match", validator)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != wantStatus {
			return fmt.Errorf("If-None-Match %s → %d, want %d", validator, resp.StatusCode, wantStatus)
		}
		if wantBody != (len(body) > 0) {
			return fmt.Errorf("If-None-Match %s → %d bytes of body, want body=%v", validator, len(body), wantBody)
		}
		return nil
	}
	if err := check(etag, http.StatusNotModified, false); err != nil {
		return err
	}
	if err := check("W/"+etag, http.StatusNotModified, false); err != nil {
		return err
	}
	return check(`"stale-validator"`, http.StatusOK, true)
}
