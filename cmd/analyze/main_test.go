package main

import (
	"path/filepath"
	"testing"

	"context"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
)

func TestRunOverSavedDatasets(t *testing.T) {
	dir := t.TempDir()
	w, err := gamma.NewWorld(42)
	if err != nil {
		t.Fatal(err)
	}
	sels, err := gamma.SelectTargets(w)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := gamma.RunVolunteer(context.Background(), w, "TW", sels["TW"])
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveDataset(filepath.Join(dir, "tw.json.gz"), ds); err != nil {
		t.Fatal(err)
	}
	// JSON mode (quietest path; report mode writes to stdout).
	if err := run(42, dir, nil, true, "", 0); err != nil {
		t.Fatal(err)
	}
	// Country-profile mode, forced serial.
	if err := run(42, dir, nil, false, "TW", 1); err != nil {
		t.Fatal(err)
	}
	// Bounded parallel pool.
	if err := run(42, dir, nil, false, "TW", 4); err != nil {
		t.Fatal(err)
	}
	if err := run(42, dir, nil, false, "XX", 0); err == nil {
		t.Error("unknown country profile must fail")
	}
	if err := run(42, t.TempDir(), nil, true, "", 0); err == nil {
		t.Error("empty data dir must fail")
	}
}
