// Command analyze runs the study's Box-2 pipeline over uploaded volunteer
// datasets: multi-constraint geolocation of every responding server,
// tracker identification via filter lists plus manual-inspection fallback,
// organization attribution, and the full set of tables and figures.
//
// Usage:
//
//	analyze -seed 42 -data ./data            # all *.json datasets in a dir
//	analyze -seed 42 data/pk.json data/eg.json
//	analyze -seed 42 -data ./data -json      # machine-readable result
//	analyze -seed 42 -data ./data -workers 4 # bound the analysis pool
//
// Countries are analyzed concurrently; the output is byte-identical for
// every -workers value (see internal/pipeline's golden harness).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/report"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 42, "world seed the datasets were recorded against")
		dataDir = flag.String("data", "", "directory of volunteer dataset JSON files")
		asJSON  = flag.Bool("json", false, "emit the analyzed result as JSON instead of the report")
		country = flag.String("country", "", "render a single-country profile instead of the full report")
		workers = flag.Int("workers", 0, "analysis worker pool size; 0 = GOMAXPROCS, 1 = serial")
	)
	flag.Parse()
	if err := run(*seed, *dataDir, flag.Args(), *asJSON, *country, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(seed uint64, dataDir string, files []string, asJSON bool, country string, workers int) error {
	if dataDir != "" {
		for _, pattern := range []string{"*.json", "*.json.gz"} {
			matches, err := filepath.Glob(filepath.Join(dataDir, pattern))
			if err != nil {
				return err
			}
			files = append(files, matches...)
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("no datasets given (use -data DIR or list files)")
	}
	sort.Strings(files)

	var datasets []*core.Dataset
	for _, f := range files {
		ds, err := core.LoadDataset(f)
		if err != nil {
			return err
		}
		datasets = append(datasets, ds)
	}
	fmt.Fprintf(os.Stderr, "analyzing %d dataset(s) against world seed %d...\n", len(datasets), seed)

	w, err := gamma.NewWorld(seed)
	if err != nil {
		return err
	}
	res, err := gamma.AnalyzeWithWorkers(w, datasets, workers)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	if country != "" {
		cr, ok := res.Countries[country]
		if !ok {
			return fmt.Errorf("no analyzed data for %q (have %v)", country, res.CountryCodes())
		}
		report.CountryProfile(os.Stdout, cr)
		return nil
	}
	sels, err := gamma.SelectTargets(w)
	if err != nil {
		return err
	}
	study := &gamma.Study{World: w, Selections: sels, Result: res}
	gamma.FullReport(study, os.Stdout)
	return nil
}
