// Command experiments regenerates every table and figure in the paper's
// evaluation: it builds the world, runs all 23 volunteers, analyzes the
// combined data, prints the full report, and emits the paper-vs-measured
// comparison table used in EXPERIMENTS.md.
//
// Usage:
//
//	experiments -seed 42                 # report + comparison to stdout
//	experiments -seed 42 -md out.md      # write the comparison as Markdown
//	experiments -seed 42 -quiet -md out.md
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/report"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 42, "study seed")
		md       = flag.String("md", "", "write the paper-vs-measured table to this Markdown file")
		quiet    = flag.Bool("quiet", false, "suppress the full report, print only the comparison")
		ablation = flag.Bool("ablation", false, "also run the constraint-ablation experiment")
		figDir   = flag.String("figdir", "", "write fig3/5/6/8 as SVG files into this directory")
	)
	flag.Parse()
	if err := run(*seed, *md, *quiet, *ablation, *figDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(seed uint64, md string, quiet, runAblation bool, figDir string) error {
	fmt.Fprintf(os.Stderr, "running the full study (23 countries, seed %d)...\n", seed)
	study, err := gamma.RunStudy(context.Background(), seed)
	if err != nil {
		return err
	}
	if !quiet {
		gamma.FullReport(study, os.Stdout)
		fmt.Println()
	}
	fmt.Println("== Paper vs measured ==")
	gamma.WriteExperimentsMarkdown(study, os.Stdout)

	if runAblation {
		fmt.Println()
		metrics, err := gamma.RunAblation(study)
		if err != nil {
			return err
		}
		report.Ablation(os.Stdout, metrics)
	}

	if figDir != "" {
		if err := gamma.WriteFigures(study, figDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "SVG figures written to %s\n", figDir)
	}

	if md != "" {
		f, err := os.Create(md)
		if err != nil {
			return err
		}
		defer f.Close()
		gamma.WriteExperimentsMarkdown(study, f)
		fmt.Fprintf(os.Stderr, "comparison table written to %s\n", md)
	}
	return nil
}
