package gamma_test

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/sched"
)

func datasetBytes(t *testing.T, ds *gamma.Dataset) string {
	t.Helper()
	b, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// requireSameDatasets asserts got reproduces want byte for byte.
func requireSameDatasets(t *testing.T, want, got map[string]*gamma.Dataset) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("datasets = %d, want %d", len(got), len(want))
	}
	for cc, w := range want {
		g, ok := got[cc]
		if !ok {
			t.Fatalf("country %s missing", cc)
		}
		if datasetBytes(t, g) != datasetBytes(t, w) {
			t.Errorf("%s: dataset differs from baseline", cc)
		}
	}
}

func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	base := fullStudy(t)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		s, err := gamma.RunStudyWithOptions(context.Background(), 42, gamma.StudyOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireSameDatasets(t, base.Datasets, s.Datasets)
		if !reflect.DeepEqual(s.Result.Funnel, base.Result.Funnel) {
			t.Errorf("workers=%d: funnel differs: %+v vs %+v", workers, s.Result.Funnel, base.Result.Funnel)
		}
		if s.Sched.Units != 23 || s.Sched.Succeeded != 23 {
			t.Errorf("workers=%d: sched stats = %+v", workers, s.Sched)
		}
	}
}

func TestStudyFaultInjectionConverges(t *testing.T) {
	base := fullStudy(t)
	s, err := gamma.RunStudyWithOptions(context.Background(), 42, gamma.StudyOptions{
		Workers:     4,
		FaultRate:   0.2,
		DriverRetry: sched.RetryPolicy{MaxAttempts: 40},
		Retry:       sched.RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatalf("20%% transient faults should be absorbed by retries: %v", err)
	}
	requireSameDatasets(t, base.Datasets, s.Datasets)
	if !reflect.DeepEqual(s.Result.Funnel, base.Result.Funnel) {
		t.Errorf("faulty-run funnel differs: %+v vs %+v", s.Result.Funnel, base.Result.Funnel)
	}

	// And the whole faulty campaign is itself reproducible.
	s2, err := gamma.RunStudyWithOptions(context.Background(), 42, gamma.StudyOptions{
		Workers:     2,
		FaultRate:   0.2,
		DriverRetry: sched.RetryPolicy{MaxAttempts: 40},
		Retry:       sched.RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameDatasets(t, s.Datasets, s2.Datasets)
}

// deadBrowser fails every load with a plain (non-transient) error.
type deadBrowser struct{}

func (deadBrowser) Load(context.Context, string) (core.PageRecord, error) {
	return core.PageRecord{}, fmt.Errorf("injected: browser binary missing")
}

func killCountry(cc string) func(string, core.Env) core.Env {
	return func(c string, env core.Env) core.Env {
		if c == cc {
			env.Browser = deadBrowser{}
		}
		return env
	}
}

func TestContinuePastFailuresYieldsPartialStudy(t *testing.T) {
	base := fullStudy(t)
	dead := base.World.SourceCountries()[0]
	s, err := gamma.RunStudyWithOptions(context.Background(), 42, gamma.StudyOptions{
		Workers:              4,
		ContinuePastFailures: true,
		EnvHook:              killCountry(dead),
	})
	if err == nil || !strings.Contains(err.Error(), "volunteer "+dead) {
		t.Fatalf("error must name the failed country %s: %v", dead, err)
	}
	if s == nil {
		t.Fatal("partial study must be returned alongside the error")
	}
	if len(s.Datasets) != 22 {
		t.Fatalf("datasets = %d, want the 22 surviving countries", len(s.Datasets))
	}
	if _, ok := s.Datasets[dead]; ok {
		t.Errorf("failed country %s must not contribute a dataset", dead)
	}
	if s.Result == nil || len(s.Result.Countries) != 22 {
		t.Fatalf("partial analysis should cover 22 countries: %+v", s.Result)
	}
	// The surviving datasets are untouched by the failure.
	for cc, ds := range s.Datasets {
		if datasetBytes(t, ds) != datasetBytes(t, base.Datasets[cc]) {
			t.Errorf("%s: dataset differs from baseline", cc)
		}
	}
	if s.Sched.Failed != 1 || s.Sched.Succeeded != 22 {
		t.Errorf("sched stats = %+v", s.Sched)
	}
}

func TestFailFastCancelsCampaign(t *testing.T) {
	base := fullStudy(t)
	dead := base.World.SourceCountries()[0]
	s, err := gamma.RunStudyWithOptions(context.Background(), 42, gamma.StudyOptions{
		Workers: 1, // the dead country is scheduled first: everything after is skipped
		EnvHook: killCountry(dead),
	})
	if err == nil || !strings.Contains(err.Error(), "volunteer "+dead) {
		t.Fatalf("fail-fast error must name the country: %v", err)
	}
	if s == nil || s.Result != nil {
		t.Error("fail-fast campaigns must not analyze a partial corpus")
	}
	if len(s.Datasets) >= 23 {
		t.Errorf("datasets = %d, campaign should have stopped early", len(s.Datasets))
	}
	if s.Sched.Skipped == 0 {
		t.Errorf("queued volunteers should be skipped: %+v", s.Sched)
	}
}

func TestCheckpointResumeAcrossCampaigns(t *testing.T) {
	base := fullStudy(t)
	dir := t.TempDir()

	// Campaign 1: heavy faults, shallow retries — most volunteers fail, but
	// every partial dataset is checkpointed.
	s1, err := gamma.RunStudyWithOptions(context.Background(), 42, gamma.StudyOptions{
		Workers:              4,
		FaultRate:            0.2,
		DriverRetry:          sched.RetryPolicy{MaxAttempts: 3},
		ContinuePastFailures: true,
		CheckpointDir:        dir,
	})
	if err == nil {
		t.Skip("improbable: every volunteer survived shallow retries")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) == 0 {
		t.Fatal("failed campaign left no checkpoints")
	}
	_ = s1

	// Campaign 2: same seed and directory, deep retries — resumes from the
	// checkpoints and converges to the fault-free baseline.
	s2, err := gamma.RunStudyWithOptions(context.Background(), 42, gamma.StudyOptions{
		Workers:              4,
		FaultRate:            0.2,
		DriverRetry:          sched.RetryPolicy{MaxAttempts: 40},
		Retry:                sched.RetryPolicy{MaxAttempts: 3},
		ContinuePastFailures: true,
		CheckpointDir:        dir,
	})
	if err != nil {
		t.Fatalf("resumed campaign should converge: %v", err)
	}
	requireSameDatasets(t, base.Datasets, s2.Datasets)

	// Checkpoints on disk now hold the complete datasets.
	for _, cc := range base.World.SourceCountries()[:3] {
		ds, err := core.LoadDataset(filepath.Join(dir, cc+".json"))
		if err != nil {
			t.Fatalf("checkpoint for %s: %v", cc, err)
		}
		if len(ds.Pages) != len(base.Datasets[cc].Pages) {
			t.Errorf("%s checkpoint has %d pages, want %d", cc, len(ds.Pages), len(base.Datasets[cc].Pages))
		}
	}
}

func TestRunStudyCompatOnError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := gamma.RunStudy(ctx, 42)
	if err == nil {
		t.Fatal("cancelled context must error")
	}
	if s != nil {
		t.Error("RunStudy keeps its original contract: nil study on error")
	}
}
