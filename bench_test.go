package gamma_test

// The benchmark harness regenerates every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark times
// the computation that produces one artifact and reports its headline
// metric via b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction run: the printed metrics are the numbers EXPERIMENTS.md
// compares against the paper.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/ablation"
	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/cbg"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/sched"
	"github.com/gamma-suite/gamma/internal/targets"
)

var (
	benchOnce  sync.Once
	benchStudy *gamma.Study
	benchErr   error
)

// study builds the full 23-country corpus once, outside every timer.
func study(b *testing.B) *gamma.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = gamma.RunStudy(context.Background(), 42)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

// ---- Figure 2 ----

func BenchmarkFig2TargetComposition(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var comp []analysis.Composition
	for i := 0; i < b.N; i++ {
		comp = analysis.Fig2Composition(s.Result)
	}
	b.ReportMetric(float64(len(comp)), "countries")
}

func BenchmarkFig2LoadSuccess(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var loads []analysis.LoadSuccess
	for i := 0; i < b.N; i++ {
		loads = analysis.Fig2LoadSuccess(s.Result)
	}
	var jp float64
	for _, l := range loads {
		if l.Country == "JP" {
			jp = l.Pct
		}
	}
	b.ReportMetric(jp, "japan_load_pct")
}

// ---- Figure 3 ----

func BenchmarkFig3Prevalence(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var prev []analysis.Prevalence
	for i := 0; i < b.N; i++ {
		prev = analysis.Fig3Prevalence(s.Result)
	}
	corr, _ := analysis.Fig3Correlation(prev)
	b.ReportMetric(corr, "reg_gov_correlation")
}

// ---- Figure 4 ----

func BenchmarkFig4PerSiteDistribution(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var dist []analysis.Distribution
	for i := 0; i < b.N; i++ {
		dist = analysis.Fig4Distribution(s.Result)
	}
	var jo float64
	for _, d := range dist {
		if d.Country == "JO" {
			jo = d.Combined.Mean
		}
	}
	b.ReportMetric(jo, "jordan_mean_trackers")
}

// ---- Figure 5 ----

func BenchmarkFig5CountryFlows(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var shares []analysis.DestShare
	for i := 0; i < b.N; i++ {
		shares = analysis.Fig5DestShares(s.Result)
	}
	var fr float64
	for _, sh := range shares {
		if sh.Dest == "FR" {
			fr = sh.SitePct
		}
	}
	b.ReportMetric(fr, "france_site_pct")
}

// ---- Figure 6 ----

func BenchmarkFig6ContinentFlows(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var flows []analysis.ContinentFlow
	for i := 0; i < b.N; i++ {
		flows = analysis.Fig6ContinentFlows(s.Result, s.World.Registry)
	}
	inward := analysis.InwardFlowContinents(flows)
	b.ReportMetric(float64(len(inward["Europe"])), "europe_inward_sources")
}

// ---- Figure 7 ----

func BenchmarkFig7HostingCountries(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var counts []analysis.HostingCount
	for i := 0; i < b.N; i++ {
		counts = analysis.Fig7HostingCounts(s.Result)
	}
	var ke float64
	for _, h := range counts {
		if h.Dest == "KE" {
			ke = float64(h.Domains)
		}
	}
	b.ReportMetric(ke, "kenya_domains")
}

// ---- Figure 8 ----

func BenchmarkFig8OrgFlows(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var flows []analysis.OrgFlow
	for i := 0; i < b.N; i++ {
		flows = analysis.Fig8OrgFlows(s.Result)
	}
	totals := analysis.OrgTotals(flows)
	b.ReportMetric(float64(totals[0].Sites), "top_org_sites")
}

// ---- Figure 9 ----

func BenchmarkFig9DomainFrequency(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var freqs []analysis.DomainFrequency
	for i := 0; i < b.N; i++ {
		freqs = analysis.Fig9DomainFrequency(s.Result)
	}
	b.ReportMetric(float64(len(freqs)), "countries")
}

// ---- Table 1 ----

func BenchmarkTable1PolicyImpact(b *testing.B) {
	s := study(b)
	policies := gamma.PolicyRegistry(s.World)
	b.ResetTimer()
	var trend float64
	for i := 0; i < b.N; i++ {
		prev := analysis.Fig3Prevalence(s.Result)
		rows := analysis.Table1(prev, policies)
		trend, _ = analysis.PolicyTrend(rows)
	}
	b.ReportMetric(trend, "strictness_correlation")
}

// ---- §3.2 ranking overlap ----

func BenchmarkSec32RankingOverlap(b *testing.B) {
	s := study(b)
	src := targets.Sources{
		Similarweb: s.World.Rankings.Similarweb,
		Semrush:    s.World.Rankings.Semrush,
		Ahrefs:     s.World.Rankings.Ahrefs,
	}
	b.ResetTimer()
	var res targets.OverlapResult
	for i := 0; i < b.N; i++ {
		res = targets.OverlapExperiment(src)
	}
	b.ReportMetric(res.SemrushPct, "semrush_overlap_pct")
	b.ReportMetric(res.AhrefsPct, "ahrefs_overlap_pct")
}

// ---- §5 funnel: the full Box-2 pipeline over all 23 datasets ----

func BenchmarkSec5Funnel(b *testing.B) {
	s := study(b)
	env := gamma.PipelineEnv(s.World)
	var datasets []*core.Dataset
	for _, cc := range s.World.SourceCountries() {
		datasets = append(datasets, s.Datasets[cc])
	}
	b.ResetTimer()
	var res *pipeline.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pipeline.Process(env, datasets)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Funnel.Trackers), "tracker_domains")
	b.ReportMetric(float64(res.Funnel.AfterRDNS), "retained_non_local")
}

// ---- §6.5 organizations ----

func BenchmarkSec65Organizations(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var own analysis.OwnershipStats
	for i := 0; i < b.N; i++ {
		own = analysis.Ownership(s.Result)
	}
	b.ReportMetric(float64(own.Orgs), "owner_orgs")
	b.ReportMetric(own.HQSharePct["US"], "us_hq_share_pct")
}

// ---- §6.7 first party ----

func BenchmarkSec67FirstParty(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var fp analysis.FirstPartyStats
	for i := 0; i < b.N; i++ {
		fp = analysis.FirstParty(s.Result)
	}
	b.ReportMetric(float64(fp.SitesWithFirstParty), "first_party_sites")
}

// ---- End-to-end and component benchmarks ----

// BenchmarkRunStudy times the entire paper: world build, 23 volunteers,
// full analysis.
func BenchmarkRunStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gamma.RunStudy(context.Background(), uint64(100+i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunStudyEndToEnd is the fixed-seed profiling benchmark: one
// full study — world build, 23 volunteer campaigns at default workers,
// Box-2 analysis — per iteration, always on the same seed so successive
// runs (and the before/after numbers in BENCH_9.json) are comparable.
func BenchmarkRunStudyEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		study, err := gamma.RunStudy(context.Background(), 42)
		if err != nil {
			b.Fatal(err)
		}
		if study.Result == nil {
			b.Fatal("no result")
		}
	}
}

// BenchmarkWorldBuild times synthetic-world generation alone.
func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gamma.NewWorld(uint64(200 + i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunVolunteer times one country's full measurement (C1+C2+C3).
func BenchmarkRunVolunteer(b *testing.B) {
	s := study(b)
	sel := s.Selections["TH"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gamma.RunVolunteer(context.Background(), s.World, "TH", sel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationConstraints times the constraint-ablation experiment:
// six pipeline variants scored against ground truth.
func BenchmarkAblationConstraints(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var metrics []ablation.Metrics
	for i := 0; i < b.N; i++ {
		var err error
		metrics, err = gamma.RunAblation(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if m.Variant == "full cascade" {
			b.ReportMetric(m.PrecisionPct, "full_cascade_precision_pct")
			b.ReportMetric(m.RecallPct, "full_cascade_recall_pct")
		}
	}
}

// BenchmarkCBGLocate times one constraint-based multilateration.
func BenchmarkCBGLocate(b *testing.B) {
	reg := geo.Default()
	truth, _ := reg.City("Amsterdam, NL")
	var ms []cbg.Measurement
	for _, id := range []string{"Frankfurt, DE", "Paris, FR", "London, GB", "Copenhagen, DK", "Warsaw, PL"} {
		c, _ := reg.City(id)
		d := geo.DistanceKm(c.Coord, truth.Coord)
		ms = append(ms, cbg.Measurement{Probe: c.Coord, RTTMs: geo.MinRTTMs(d)*1.8 + 1})
	}
	b.ResetTimer()
	var est cbg.Estimate
	for i := 0; i < b.N; i++ {
		est = cbg.Locate(ms, cbg.DefaultConfig())
	}
	b.ReportMetric(est.RadiusKm, "uncertainty_km")
}

// BenchmarkFullReport times rendering every figure and table.
func BenchmarkFullReport(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gamma.FullReport(s, io.Discard)
	}
}

// ---- Campaign scheduler ----

// BenchmarkScheduledStudy sweeps the campaign scheduler's worker count over
// the full 23-volunteer study. Datasets are byte-identical at every width
// (the determinism tests assert it); this measures the wall-clock effect
// alone.
func BenchmarkScheduledStudy(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := gamma.RunStudyWithOptions(context.Background(), uint64(300+i), gamma.StudyOptions{
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(s.Sched.Attempts), "volunteer_attempts")
			}
		})
	}
}

// BenchmarkScheduledStudyFaulty measures the retry overhead of running the
// study through injected transient faults: per-call retries absorb every
// fault, so the extra attempts (reported from the suite fault counters via
// Study.Sched) are pure overhead against the fault-free run above.
func BenchmarkScheduledStudyFaulty(b *testing.B) {
	for _, rate := range []float64{0.05, 0.2} {
		b.Run(fmt.Sprintf("rate=%v", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := gamma.RunStudyWithOptions(context.Background(), uint64(300+i), gamma.StudyOptions{
					Workers:     4,
					FaultRate:   rate,
					DriverRetry: sched.RetryPolicy{MaxAttempts: 40},
					Retry:       sched.RetryPolicy{MaxAttempts: 3},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(s.Sched.Retries), "volunteer_retries")
			}
		})
	}
}
